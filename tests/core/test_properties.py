"""Property-based tests (hypothesis) for the core invariants.

These encode the paper's formal claims directly:

* skyline members are mutually non-dominated; every non-member is
  dominated by some member (skyline definition);
* SKY_U subset ext-SKY_U (Observation 3);
* SKY_V subset ext-SKY_U for V subset U (Observation 4);
* answering any subspace query from ext-SKY_D is exact;
* threshold-based scans equal the oracle regardless of threshold;
* merging partitioned local skylines equals the centralized skyline.
"""

from __future__ import annotations

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dataset import PointSet
from repro.core.dominance import dominates
from repro.core.extended_skyline import extended_skyline_points, subspace_skyline_points
from repro.core.local_skyline import local_subspace_skyline
from repro.core.merging import merge_sorted_skylines
from repro.core.store import SortedByF
from repro.core.subspace import all_subspaces


@st.composite
def point_sets(draw, min_points=1, max_points=40, min_dims=1, max_dims=4):
    d = draw(st.integers(min_dims, max_dims))
    n = draw(st.integers(min_points, max_points))
    # Small integer grids maximize coordinate ties, the adversarial case
    # for ext-domination; mixing in floats covers the continuous case.
    use_grid = draw(st.booleans())
    if use_grid:
        values = draw(
            st.lists(
                st.lists(st.integers(0, 4), min_size=d, max_size=d),
                min_size=n,
                max_size=n,
            )
        )
        arr = np.asarray(values, dtype=float)
    else:
        values = draw(
            st.lists(
                st.lists(
                    st.floats(0, 1, allow_nan=False, width=32), min_size=d, max_size=d
                ),
                min_size=n,
                max_size=n,
            )
        )
        arr = np.asarray(values, dtype=float)
    return PointSet(arr)


@st.composite
def point_sets_with_subspace(draw):
    points = draw(point_sets())
    d = points.dimensionality
    size = draw(st.integers(1, d))
    dims = draw(
        st.lists(st.integers(0, d - 1), min_size=size, max_size=size, unique=True)
    )
    return points, tuple(sorted(dims))


@given(point_sets_with_subspace())
@settings(max_examples=120, deadline=None)
def test_skyline_definition(case):
    """Members mutually non-dominated; non-members dominated by a member."""
    points, sub = case
    sky = subspace_skyline_points(points, sub)
    sky_rows = {int(i): row for i, row in sky}
    for i, row_i in sky:
        for j, row_j in sky:
            if i != j:
                assert not dominates(row_j, row_i, sub)
    member_ids = sky.id_set()
    for i, row in points:
        if i not in member_ids:
            assert any(dominates(srow, row, sub) for srow in sky_rows.values())


@given(point_sets_with_subspace())
@settings(max_examples=100, deadline=None)
def test_observation3_containment(case):
    points, sub = case
    sky = subspace_skyline_points(points, sub).id_set()
    ext = extended_skyline_points(points, sub).id_set()
    assert sky <= ext


@given(point_sets())
@settings(max_examples=60, deadline=None)
def test_observation4_every_subspace(points):
    ext_full = extended_skyline_points(points).id_set()
    for sub in all_subspaces(points.dimensionality):
        assert subspace_skyline_points(points, sub).id_set() <= ext_full


@given(point_sets())
@settings(max_examples=60, deadline=None)
def test_ext_skyline_answers_all_subspaces_exactly(points):
    """The load-bearing theorem: SKY_U(ext-SKY_D) == SKY_U(S) for all U."""
    ext = extended_skyline_points(points)
    for sub in all_subspaces(points.dimensionality):
        assert (
            subspace_skyline_points(ext, sub).id_set()
            == subspace_skyline_points(points, sub).id_set()
        )


@given(point_sets_with_subspace(), st.floats(0, 2, allow_nan=False))
@settings(max_examples=100, deadline=None)
def test_threshold_scan_never_false_negative(case, threshold_scale):
    """Algorithm 1 with *any* initial threshold keeps every true local
    skyline point the threshold admits (no false negatives), and any
    extra survivor is dominated only by points the threshold pruned —
    i.e. points whose every queried coordinate exceeds t, which a
    threshold-achieving point at the merge necessarily dominates.
    """
    points, sub = case
    store = SortedByF.from_points(points)
    full = local_subspace_skyline(store, sub)
    t = threshold_scale * (full.threshold if math.isfinite(full.threshold) else 1.0)
    capped = local_subspace_skyline(store, sub, initial_threshold=t)
    capped_ids = capped.points.id_set()
    full_ids = full.points.id_set()
    # no false negatives among points the threshold admits
    for i, fv in zip(full.result.points.ids, full.result.f):
        if fv <= t:
            assert int(i) in capped_ids
    # every extra survivor's dominators were all pruned by the threshold
    cols = list(sub)
    for extra in capped_ids - full_ids:
        e_row = points.by_id(extra)
        dominators = [
            row for _i, row in points if dominates(row, e_row, sub)
        ]
        assert dominators, "extra point must be dominated (it is not in the skyline)"
        for row in dominators:
            assert float(np.min(row)) > t  # f(dominator) > t: it was pruned
        # and the extra point itself lies strictly beyond t on U, so any
        # point achieving dist_U <= t dominates it at merge time
        assert np.all(e_row[cols] > t)


@given(point_sets_with_subspace())
@settings(max_examples=80, deadline=None)
def test_threshold_from_own_data_never_false_positive(case):
    """With a threshold achieved by the data itself (the protocol's
    case), the capped scan returns a subset of the true local skyline."""
    points, sub = case
    store = SortedByF.from_points(points)
    full = local_subspace_skyline(store, sub)
    capped = local_subspace_skyline(store, sub, initial_threshold=full.threshold)
    assert capped.points.id_set() <= full.points.id_set()


@given(point_sets_with_subspace(), st.integers(2, 5))
@settings(max_examples=80, deadline=None)
def test_partition_merge_equals_centralized(case, parts):
    """Local skylines of any horizontal partitioning merge exactly."""
    points, sub = case
    part_sets = [
        PointSet(points.values[i::parts], points.ids[i::parts])
        for i in range(parts)
        if len(points.values[i::parts])
    ]
    lists = [
        local_subspace_skyline(SortedByF.from_points(p), sub).result for p in part_sets
    ]
    merged = merge_sorted_skylines(lists, sub)
    assert merged.points.id_set() == subspace_skyline_points(points, sub).id_set()


@given(point_sets_with_subspace())
@settings(max_examples=60, deadline=None)
def test_index_kinds_agree(case):
    points, sub = case
    store = SortedByF.from_points(points)
    results = {
        kind: local_subspace_skyline(store, sub, index_kind=kind).points.id_set()
        for kind in ("block", "list", "rtree")
    }
    assert results["block"] == results["list"] == results["rtree"]


@given(point_sets())
@settings(max_examples=60, deadline=None)
def test_ext_skyline_strict_scan_matches_mask(points):
    scan = local_subspace_skyline(
        SortedByF.from_points(points),
        tuple(range(points.dimensionality)),
        strict=True,
    ).points.id_set()
    mask = extended_skyline_points(points).id_set()
    assert scan == mask
