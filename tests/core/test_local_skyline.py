"""Unit tests for Algorithm 1 (threshold-based local subspace skyline)."""

import math

import numpy as np
import pytest

from repro.core.dataset import PointSet
from repro.core.local_skyline import local_subspace_skyline
from repro.core.mapping import dist_values, f_values
from repro.core.store import SortedByF
from tests.conftest import brute_force_skyline_ids

INDEX_KINDS = ("block", "list", "rtree")


def _store(rng, n=150, d=5) -> tuple[PointSet, SortedByF]:
    points = PointSet(rng.random((n, d)))
    return points, SortedByF.from_points(points)


class TestCorrectness:
    @pytest.mark.parametrize("index_kind", INDEX_KINDS)
    def test_matches_brute_force(self, rng, index_kind):
        points, store = _store(rng)
        for sub in [(0,), (1, 3), (0, 2, 4)]:
            got = local_subspace_skyline(store, sub, index_kind=index_kind)
            assert got.points.id_set() == brute_force_skyline_ids(points, sub)

    @pytest.mark.parametrize("index_kind", INDEX_KINDS)
    def test_strict_mode_matches_brute_force(self, rng, index_kind):
        points, store = _store(rng, n=100)
        got = local_subspace_skyline(store, (0, 1, 2, 3, 4), strict=True, index_kind=index_kind)
        assert got.points.id_set() == brute_force_skyline_ids(
            points, (0, 1, 2, 3, 4), strict=True
        )

    def test_result_is_f_sorted(self, rng):
        _points, store = _store(rng)
        got = local_subspace_skyline(store, (1, 2))
        assert np.all(np.diff(got.result.f) >= 0)

    def test_empty_store(self):
        got = local_subspace_skyline(SortedByF.empty(3), (0, 1))
        assert len(got.result) == 0
        assert got.threshold == math.inf
        assert got.examined == 0

    def test_single_point(self):
        store = SortedByF.from_points(PointSet(np.array([[0.3, 0.7]])))
        got = local_subspace_skyline(store, (0, 1))
        assert len(got.result) == 1
        assert got.threshold == pytest.approx(0.7)

    def test_all_duplicates_kept(self):
        pts = PointSet(np.array([[0.5, 0.5]] * 4))
        got = local_subspace_skyline(SortedByF.from_points(pts), (0, 1))
        assert len(got.result) == 4


class TestThreshold:
    def test_final_threshold_is_min_dist(self, rng):
        points, store = _store(rng)
        sub = (0, 3)
        got = local_subspace_skyline(store, sub)
        expected = dist_values(got.result.points.values, sub).min()
        assert got.threshold == pytest.approx(expected)

    def test_initial_threshold_caps_result(self, rng):
        """With threshold t, only skyline points with f <= t come back."""
        points, store = _store(rng)
        sub = (1, 4)
        full = local_subspace_skyline(store, sub)
        t = 0.15
        capped = local_subspace_skyline(store, sub, initial_threshold=t)
        f_full = f_values(full.result.points.values)
        expected = {
            int(i)
            for i, fv in zip(full.result.points.ids, f_full)
            if fv <= t
        }
        assert capped.points.id_set() == expected

    def test_initial_threshold_never_false_negative(self, rng):
        """Any point pruned by a (valid) threshold is globally dominated,
        so capped result == full result filtered by f <= t."""
        points, store = _store(rng, n=200)
        sub = (0, 2)
        full = local_subspace_skyline(store, sub)
        t = full.threshold  # a genuinely achievable threshold
        capped = local_subspace_skyline(store, sub, initial_threshold=t)
        assert capped.points.id_set() <= full.points.id_set()

    def test_tiny_threshold_short_circuits(self, rng):
        points, store = _store(rng)
        got = local_subspace_skyline(store, (0, 1), initial_threshold=-1.0)
        assert got.examined == 0
        assert len(got.result) == 0
        assert got.threshold == -1.0

    def test_threshold_ties_are_examined(self):
        """A point whose f equals the threshold must not be dropped.

        The only non-dominated tie is a duplicate of an all-equal
        threshold point: the paper's ``while f(p) < threshold`` loop
        would drop it, violating exactness; our ``<=`` keeps it.
        """
        pts = PointSet(np.array([[0.5, 0.5], [0.5, 0.5]]))
        store = SortedByF.from_points(pts)
        got = local_subspace_skyline(store, (0, 1))
        assert len(got.result) == 2

    def test_initial_threshold_tie_examined(self):
        """Same tie situation against a propagated initial threshold."""
        pts = PointSet(np.array([[0.5, 0.5]]))
        store = SortedByF.from_points(pts)
        got = local_subspace_skyline(store, (0, 1), initial_threshold=0.5)
        assert len(got.result) == 1

    def test_early_termination_prunes_scans(self, rng):
        points, store = _store(rng, n=500)
        got = local_subspace_skyline(store, (0, 1))
        assert got.examined < got.input_size
        assert got.pruned_by_threshold == got.input_size - got.examined


class TestStats:
    def test_duration_positive(self, rng):
        _points, store = _store(rng)
        got = local_subspace_skyline(store, (0, 1))
        assert got.duration > 0

    def test_comparisons_counted(self, rng):
        _points, store = _store(rng)
        got = local_subspace_skyline(store, (0, 1))
        assert got.comparisons > 0

    def test_input_size_recorded(self, rng):
        points, store = _store(rng)
        got = local_subspace_skyline(store, (0, 1))
        assert got.input_size == len(points)
