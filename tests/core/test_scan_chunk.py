"""The scan batch size is tunable and never changes the answer."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.dataset import PointSet
from repro.core.local_skyline import (
    _SCAN_CHUNK,
    local_subspace_skyline,
    resolve_scan_chunk,
)
from repro.core.merging import merge_sorted_skylines
from repro.core.store import SortedByF
from repro.core.subspace import full_space

from tests.conftest import brute_force_skyline_ids


class TestResolveScanChunk:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCAN_CHUNK", raising=False)
        assert resolve_scan_chunk() == _SCAN_CHUNK

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCAN_CHUNK", "7")
        assert resolve_scan_chunk() == 7

    def test_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCAN_CHUNK", "7")
        assert resolve_scan_chunk(33) == 33

    @pytest.mark.parametrize("bad", [0, -1, -256])
    def test_nonpositive_rejected(self, bad):
        with pytest.raises(ValueError, match="positive"):
            resolve_scan_chunk(bad)

    def test_nonpositive_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCAN_CHUNK", "0")
        with pytest.raises(ValueError, match="positive"):
            resolve_scan_chunk()


@pytest.fixture
def store(rng) -> SortedByF:
    return SortedByF.from_points(PointSet(rng.random((120, 4))))


@pytest.mark.parametrize("chunk", [1, 3, 17, 1024])
@pytest.mark.parametrize("subspace", [(0, 2), (1, 2, 3), (0, 1, 2, 3)])
def test_chunk_size_never_changes_the_scan(store, subspace, chunk):
    reference = local_subspace_skyline(store, subspace)
    other = local_subspace_skyline(store, subspace, scan_chunk=chunk)
    assert other.result.points.id_set() == reference.result.points.id_set()
    assert other.threshold == reference.threshold
    assert np.array_equal(other.result.f, reference.result.f)
    # `examined` legitimately varies with the chunk size (batch
    # boundaries honor the threshold known at batch start), but every
    # scan reads at least the surviving points.
    assert other.examined >= len(other.result)


def test_chunk_of_one_matches_oracle(store):
    result = local_subspace_skyline(store, (0, 3), scan_chunk=1)
    assert result.result.points.id_set() == brute_force_skyline_ids(
        store.points, (0, 3)
    )


def test_env_chunk_flows_through_scan(store, monkeypatch):
    reference = local_subspace_skyline(store, (0, 1, 2))
    monkeypatch.setenv("REPRO_SCAN_CHUNK", "2")
    via_env = local_subspace_skyline(store, (0, 1, 2))
    assert via_env.result.points.id_set() == reference.result.points.id_set()
    assert via_env.threshold == reference.threshold


def test_merge_accepts_scan_chunk(rng):
    stores = [
        SortedByF.from_points(
            PointSet(rng.random((30, 3)), np.arange(i * 30, (i + 1) * 30))
        )
        for i in range(3)
    ]
    subspace = full_space(3)
    reference = merge_sorted_skylines(
        stores, subspace, initial_threshold=math.inf, strict=True
    )
    chunked = merge_sorted_skylines(
        stores, subspace, initial_threshold=math.inf, strict=True, scan_chunk=1
    )
    assert chunked.result.points.id_set() == reference.result.points.id_set()
    assert np.array_equal(chunked.result.f, reference.result.f)
