"""Unit tests for the skycube oracle."""

import numpy as np
import pytest

from repro.core.dataset import PointSet
from repro.core.skycube import (
    skycube,
    skycube_union_ids,
    skycube_via_extended,
    verify_extended_skyline_covers_skycube,
)
from repro.core.subspace import all_subspaces
from tests.conftest import brute_force_skyline_ids


class TestSkycube:
    def test_has_all_subspaces(self, rng):
        points = PointSet(rng.random((30, 3)))
        cube = skycube(points)
        assert set(cube) == set(all_subspaces(3))

    def test_entries_match_brute_force(self, rng):
        points = PointSet(rng.random((40, 3)))
        cube = skycube(points)
        for sub, ids in cube.items():
            assert ids == brute_force_skyline_ids(points, sub)

    def test_dimensionality_guard(self, rng):
        points = PointSet(rng.random((5, 13)))
        with pytest.raises(ValueError, match="entries"):
            skycube(points)

    def test_union(self, rng):
        points = PointSet(rng.random((40, 3)))
        cube = skycube(points)
        union = skycube_union_ids(cube)
        assert union == frozenset().union(*cube.values())

    def test_observation4_verifier(self, rng):
        for seed in range(5):
            pts = PointSet(np.random.default_rng(seed).random((50, 4)))
            assert verify_extended_skyline_covers_skycube(pts)

    def test_observation4_verifier_with_ties(self, rng):
        values = rng.integers(0, 3, size=(60, 4)).astype(float)
        assert verify_extended_skyline_covers_skycube(PointSet(values))


class TestSkycubeViaExtended:
    def test_equals_brute_force(self, rng):
        points = PointSet(rng.random((80, 4)))
        assert skycube_via_extended(points) == skycube(points)

    def test_equals_brute_force_with_ties(self, rng):
        values = rng.integers(0, 3, size=(80, 4)).astype(float)
        points = PointSet(values)
        assert skycube_via_extended(points) == skycube(points)

    def test_dimensionality_guard(self, rng):
        with pytest.raises(ValueError, match="entries"):
            skycube_via_extended(PointSet(rng.random((5, 13))))

    def test_ext_skyline_monotonicity(self, rng):
        """The sharing invariant: ext-SKY_V subset ext-SKY_U, V subset U."""
        from repro.core.dominance import extended_skyline_mask
        from repro.core.subspace import all_subspaces

        points = PointSet(rng.random((60, 4)))
        ext = {
            sub: points.mask(extended_skyline_mask(points.values, sub)).id_set()
            for sub in all_subspaces(4)
        }
        for small, small_ids in ext.items():
            for big, big_ids in ext.items():
                if set(small) <= set(big):
                    assert small_ids <= big_ids, (small, big)
