"""The full-space SFS insert fast path and the index `positions` contract."""

from __future__ import annotations

import numpy as np
import pytest

import repro.core.local_skyline as local_skyline_module
from repro.core.dataset import PointSet
from repro.core.indexes import BlockDominanceIndex, make_index
from repro.core.local_skyline import local_subspace_skyline
from repro.core.store import SortedByF

from tests.conftest import brute_force_skyline_ids


class TestBulkInsertCanEvict:
    def test_eviction_is_the_default(self):
        index = BlockDominanceIndex(2)
        index.bulk_insert(np.array([0]), np.array([[0.5, 0.5]]))
        # (0.4, 0.4) dominates the resident candidate.
        index.bulk_insert(np.array([1]), np.array([[0.4, 0.4]]))
        assert index.positions() == [1]

    def test_can_evict_false_skips_the_eviction_scan(self):
        index = BlockDominanceIndex(2)
        index.bulk_insert(np.array([0]), np.array([[0.5, 0.5]]))
        before = index.comparisons
        index.bulk_insert(
            np.array([1]), np.array([[0.4, 0.4]]), can_evict=False
        )
        # Both stay resident and no eviction comparisons were spent.
        assert index.positions() == [0, 1]
        assert index.comparisons == before

    def test_can_evict_false_on_empty_index(self):
        index = BlockDominanceIndex(3)
        index.bulk_insert(
            np.array([4, 7]), np.array([[0.1, 0.2, 0.3], [0.3, 0.2, 0.1]]),
            can_evict=False,
        )
        assert index.positions() == [4, 7]


class TestFullSpaceFastPath:
    """The fast path may only fire where f-order makes it sound."""

    def test_full_space_strict_matches_oracle(self, rng):
        points = PointSet(rng.random((150, 4)))
        store = SortedByF.from_points(points)
        result = local_subspace_skyline(store, (0, 1, 2, 3), strict=True)
        assert result.result.points.id_set() == brute_force_skyline_ids(
            points, (0, 1, 2, 3), strict=True
        )

    def test_full_space_nonstrict_matches_oracle(self, rng):
        points = PointSet(rng.random((150, 4)))
        store = SortedByF.from_points(points)
        result = local_subspace_skyline(store, (0, 1, 2, 3))
        assert result.result.points.id_set() == brute_force_skyline_ids(
            points, (0, 1, 2, 3)
        )

    def test_full_space_with_f_ties_matches_oracle(self, rng):
        # Duplicated rows and a shared minimum coordinate manufacture
        # exact f ties — the one case where a later full-space point can
        # still dominate (and must evict) an earlier one.
        base = rng.integers(0, 4, size=(60, 3)).astype(float)
        values = np.vstack([base, base[:20]])
        points = PointSet(values)
        store = SortedByF.from_points(points)
        for strict in (False, True):
            result = local_subspace_skyline(store, (0, 1, 2), strict=strict)
            assert result.result.points.id_set() == brute_force_skyline_ids(
                points, (0, 1, 2), strict=strict
            ), strict

    def test_subspace_scan_still_evicts(self, rng):
        # f is computed over the full space, so for proper subspaces a
        # later point may dominate an earlier candidate; the fast path
        # must not apply.  d=2, U={0}: p=(0.5, 0.1) has f=0.1 and enters
        # first; q=(0.4, 0.5) has f=0.4 yet dominates p in U.
        points = PointSet(np.array([[0.5, 0.1], [0.4, 0.5]]))
        store = SortedByF.from_points(points)
        result = local_subspace_skyline(store, (0,))
        assert result.result.points.id_set() == brute_force_skyline_ids(points, (0,))
        assert result.result.points.id_set() == {1}

    def test_fast_path_skips_eviction_comparisons(self, rng):
        # Same scan, fast path forced off vs on: identical candidates,
        # strictly fewer comparisons (the eviction scans are skipped).
        from repro.core.indexes import BlockDominanceIndex
        from repro.core.local_skyline import _chunked_scan

        points = PointSet(rng.random((400, 4)))
        store = SortedByF.from_points(points)
        proj, dists = store.projection((0, 1, 2, 3))
        results = {}
        for full_space in (False, True):
            index = BlockDominanceIndex(4, strict=True)
            _chunked_scan(
                index, proj, store.f, dists, float("inf"), strict=True,
                full_space=full_space, chunk=64,
            )
            results[full_space] = (index.positions(), index.comparisons)
        assert results[True][0] == results[False][0]
        assert results[True][1] < results[False][1]


class TestPositionsContract:
    @pytest.mark.parametrize("kind", ["block", "list", "rtree"])
    def test_positions_returns_a_list(self, rng, kind):
        index = make_index(kind, 3)
        for i, row in enumerate(rng.random((20, 3))):
            if not index.is_dominated(row):
                index.insert_and_prune(i, row)
        positions = index.positions()
        assert isinstance(positions, list)
        assert all(isinstance(p, (int, np.integer)) for p in positions)
        assert positions == sorted(positions)  # scan order is preserved

    def test_block_positions_are_python_ints(self, rng):
        # The block index stores positions in an int64 array; its
        # positions() must still hand back plain python ints.
        index = make_index("block", 3)
        index.bulk_insert(np.array([3, 9]), rng.random((2, 3)))
        assert all(type(p) is int for p in index.positions())

    @pytest.mark.parametrize("kind", ["block", "list", "rtree"])
    def test_positions_empty_on_fresh_index(self, kind):
        assert make_index(kind, 2).positions() == []


class TestNdarraySafeAssembly:
    """Result assembly must not rely on list truthiness for positions."""

    @pytest.fixture
    def ndarray_positions_index(self, monkeypatch):
        real_make_index = make_index

        class NdarrayPositions:
            def __init__(self, inner):
                self._inner = inner

            def __getattr__(self, name):
                return getattr(self._inner, name)

            def positions(self):
                return np.asarray(self._inner.positions(), dtype=np.intp)

        monkeypatch.setattr(
            local_skyline_module,
            "make_index",
            lambda *a, **kw: NdarrayPositions(real_make_index(*a, **kw)),
        )

    def test_nonempty_ndarray_positions(self, rng, ndarray_positions_index):
        points = PointSet(rng.random((40, 3)))
        store = SortedByF.from_points(points)
        result = local_subspace_skyline(store, (0, 2), index_kind="list")
        assert result.result.points.id_set() == brute_force_skyline_ids(
            points, (0, 2)
        )

    def test_empty_ndarray_positions(self, ndarray_positions_index):
        store = SortedByF.from_points(PointSet(np.zeros((0, 3))))
        result = local_subspace_skyline(store, (0, 1), index_kind="list")
        assert len(result.result) == 0
        assert result.result.f.shape == (0,)
