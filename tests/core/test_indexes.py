"""Unit tests for the pluggable dominance indexes."""

import numpy as np
import pytest

from repro.core.indexes import (
    BlockDominanceIndex,
    ListDominanceIndex,
    RTreeDominanceIndex,
    make_index,
)

ALL_KINDS = ("list", "block", "rtree")


class TestFactory:
    def test_make_index(self):
        assert isinstance(make_index("list", 3), ListDominanceIndex)
        assert isinstance(make_index("block", 3), BlockDominanceIndex)
        assert isinstance(make_index("rtree", 3), RTreeDominanceIndex)

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown index kind"):
            make_index("btree", 3)


@pytest.mark.parametrize("kind", ALL_KINDS)
class TestSemantics:
    def test_empty_index_dominates_nothing(self, kind):
        index = make_index(kind, 2)
        assert not index.is_dominated(np.array([0.5, 0.5]))
        assert len(index) == 0

    def test_insert_then_dominate(self, kind):
        index = make_index(kind, 2)
        index.insert_and_prune(0, np.array([0.2, 0.2]))
        assert index.is_dominated(np.array([0.5, 0.5]))
        assert not index.is_dominated(np.array([0.1, 0.5]))

    def test_identical_point_not_dominated(self, kind):
        index = make_index(kind, 2)
        index.insert_and_prune(0, np.array([0.2, 0.2]))
        assert not index.is_dominated(np.array([0.2, 0.2]))

    def test_insert_evicts_dominated(self, kind):
        index = make_index(kind, 2)
        index.insert_and_prune(0, np.array([0.5, 0.5]))
        index.insert_and_prune(1, np.array([0.2, 0.2]))
        assert len(index) == 1
        assert index.positions() == [1]

    def test_incomparable_points_coexist(self, kind):
        index = make_index(kind, 2)
        index.insert_and_prune(0, np.array([0.1, 0.9]))
        index.insert_and_prune(1, np.array([0.9, 0.1]))
        assert sorted(index.positions()) == [0, 1]

    def test_strict_mode(self, kind):
        index = make_index(kind, 2, strict=True)
        index.insert_and_prune(0, np.array([0.2, 0.5]))
        # shares a coordinate -> not ext-dominated
        assert not index.is_dominated(np.array([0.2, 0.9]))
        assert index.is_dominated(np.array([0.3, 0.6]))

    def test_comparisons_counter_increases(self, kind):
        index = make_index(kind, 2)
        index.insert_and_prune(0, np.array([0.5, 0.5]))
        before = index.comparisons
        index.is_dominated(np.array([0.6, 0.6]))
        assert index.comparisons > before


class TestComparisonsAccounting:
    """`comparisons` must count work done, not candidates held."""

    def test_list_early_exit_counts_one(self):
        index = ListDominanceIndex(2)
        # The first candidate dominates the probe: the scan must stop
        # (and charge) after exactly one comparison despite 4 candidates.
        index.insert_and_prune(0, np.array([0.1, 0.1]))
        index.insert_and_prune(1, np.array([0.2, 0.9]))
        index.insert_and_prune(2, np.array([0.9, 0.2]))
        index.insert_and_prune(3, np.array([0.5, 0.6]))
        before = index.comparisons
        assert index.is_dominated(np.array([0.95, 0.95]))
        assert index.comparisons - before == 1

    def test_list_miss_counts_all(self):
        index = ListDominanceIndex(2)
        index.insert_and_prune(0, np.array([0.2, 0.9]))
        index.insert_and_prune(1, np.array([0.9, 0.2]))
        before = index.comparisons
        assert not index.is_dominated(np.array([0.1, 0.1]))
        assert index.comparisons - before == 2

    def test_rtree_pruning_skips_subtrees(self):
        # An anti-correlated diagonal (mutually incomparable, so all 64
        # survive) and a probe below it: every subtree MBR exceeds the
        # probe somewhere, so the window query prunes subtrees and
        # charges (far) fewer than `len(tree)` point tests.
        index = RTreeDominanceIndex(2, max_entries=4)
        xs = np.linspace(0.1, 0.9, 64)
        for pos, x in enumerate(xs):
            index.insert_and_prune(pos, np.array([x, 1.0 - x]))
        n = len(index)
        assert n == 64
        before = index.comparisons
        assert not index.is_dominated(np.array([0.01, 0.01]))
        assert index.comparisons - before < n

    def test_rtree_and_list_agree_on_dominance_while_counting(self, rng):
        """Accounting changes must not change verdicts."""
        rtree = RTreeDominanceIndex(3)
        ref = ListDominanceIndex(3)
        for pos in range(100):
            point = rng.random(3)
            assert rtree.is_dominated(point) == ref.is_dominated(point)
            if not ref.is_dominated(point):
                rtree.insert_and_prune(pos, point)
                ref.insert_and_prune(pos, point)
        assert rtree.comparisons > 0

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_counts_never_exceed_candidate_scan(self, kind, rng):
        """Upper bound: no index charges more than a full linear scan."""
        index = make_index(kind, 2)
        worst_case = 0
        for pos in range(80):
            point = rng.random(2)
            worst_case += len(index)
            if not index.is_dominated(point):
                worst_case += len(index)
                index.insert_and_prune(pos, point)
        assert index.comparisons <= worst_case


class TestIndexAgreement:
    def test_random_stream_agreement(self, rng):
        """All three implementations track identical candidate sets."""
        indexes = {kind: make_index(kind, 3) for kind in ALL_KINDS}
        for pos in range(200):
            point = rng.random(3)
            verdicts = {kind: idx.is_dominated(point) for kind, idx in indexes.items()}
            assert len(set(verdicts.values())) == 1, f"disagreement at {pos}"
            if not verdicts["list"]:
                for idx in indexes.values():
                    idx.insert_and_prune(pos, point)
            survivors = {kind: sorted(idx.positions()) for kind, idx in indexes.items()}
            assert survivors["list"] == survivors["block"] == survivors["rtree"]


class TestBlockBulkInsert:
    def test_bulk_insert_appends(self):
        index = BlockDominanceIndex(2)
        index.bulk_insert(np.array([0, 1]), np.array([[0.1, 0.9], [0.9, 0.1]]))
        assert sorted(index.positions()) == [0, 1]

    def test_bulk_insert_evicts(self):
        index = BlockDominanceIndex(2)
        index.insert_and_prune(0, np.array([0.5, 0.5]))
        index.bulk_insert(np.array([1]), np.array([[0.2, 0.2]]))
        assert index.positions() == [1]

    def test_bulk_insert_grows_capacity(self):
        index = BlockDominanceIndex(2)
        n = 300  # beyond the initial capacity of 64
        rows = np.column_stack([np.linspace(0, 1, n), np.linspace(1, 0, n)])
        index.bulk_insert(np.arange(n), rows)
        assert len(index) == n

    def test_bulk_insert_empty_is_noop(self):
        index = BlockDominanceIndex(2)
        index.bulk_insert(np.array([], dtype=int), np.empty((0, 2)))
        assert len(index) == 0
