"""Unit tests for the pluggable dominance indexes."""

import numpy as np
import pytest

from repro.core.indexes import (
    BlockDominanceIndex,
    ListDominanceIndex,
    RTreeDominanceIndex,
    make_index,
)

ALL_KINDS = ("list", "block", "rtree")


class TestFactory:
    def test_make_index(self):
        assert isinstance(make_index("list", 3), ListDominanceIndex)
        assert isinstance(make_index("block", 3), BlockDominanceIndex)
        assert isinstance(make_index("rtree", 3), RTreeDominanceIndex)

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown index kind"):
            make_index("btree", 3)


@pytest.mark.parametrize("kind", ALL_KINDS)
class TestSemantics:
    def test_empty_index_dominates_nothing(self, kind):
        index = make_index(kind, 2)
        assert not index.is_dominated(np.array([0.5, 0.5]))
        assert len(index) == 0

    def test_insert_then_dominate(self, kind):
        index = make_index(kind, 2)
        index.insert_and_prune(0, np.array([0.2, 0.2]))
        assert index.is_dominated(np.array([0.5, 0.5]))
        assert not index.is_dominated(np.array([0.1, 0.5]))

    def test_identical_point_not_dominated(self, kind):
        index = make_index(kind, 2)
        index.insert_and_prune(0, np.array([0.2, 0.2]))
        assert not index.is_dominated(np.array([0.2, 0.2]))

    def test_insert_evicts_dominated(self, kind):
        index = make_index(kind, 2)
        index.insert_and_prune(0, np.array([0.5, 0.5]))
        index.insert_and_prune(1, np.array([0.2, 0.2]))
        assert len(index) == 1
        assert index.positions() == [1]

    def test_incomparable_points_coexist(self, kind):
        index = make_index(kind, 2)
        index.insert_and_prune(0, np.array([0.1, 0.9]))
        index.insert_and_prune(1, np.array([0.9, 0.1]))
        assert sorted(index.positions()) == [0, 1]

    def test_strict_mode(self, kind):
        index = make_index(kind, 2, strict=True)
        index.insert_and_prune(0, np.array([0.2, 0.5]))
        # shares a coordinate -> not ext-dominated
        assert not index.is_dominated(np.array([0.2, 0.9]))
        assert index.is_dominated(np.array([0.3, 0.6]))

    def test_comparisons_counter_increases(self, kind):
        index = make_index(kind, 2)
        index.insert_and_prune(0, np.array([0.5, 0.5]))
        before = index.comparisons
        index.is_dominated(np.array([0.6, 0.6]))
        assert index.comparisons > before


class TestIndexAgreement:
    def test_random_stream_agreement(self, rng):
        """All three implementations track identical candidate sets."""
        indexes = {kind: make_index(kind, 3) for kind in ALL_KINDS}
        for pos in range(200):
            point = rng.random(3)
            verdicts = {kind: idx.is_dominated(point) for kind, idx in indexes.items()}
            assert len(set(verdicts.values())) == 1, f"disagreement at {pos}"
            if not verdicts["list"]:
                for idx in indexes.values():
                    idx.insert_and_prune(pos, point)
            survivors = {kind: sorted(idx.positions()) for kind, idx in indexes.items()}
            assert survivors["list"] == survivors["block"] == survivors["rtree"]


class TestBlockBulkInsert:
    def test_bulk_insert_appends(self):
        index = BlockDominanceIndex(2)
        index.bulk_insert(np.array([0, 1]), np.array([[0.1, 0.9], [0.9, 0.1]]))
        assert sorted(index.positions()) == [0, 1]

    def test_bulk_insert_evicts(self):
        index = BlockDominanceIndex(2)
        index.insert_and_prune(0, np.array([0.5, 0.5]))
        index.bulk_insert(np.array([1]), np.array([[0.2, 0.2]]))
        assert index.positions() == [1]

    def test_bulk_insert_grows_capacity(self):
        index = BlockDominanceIndex(2)
        n = 300  # beyond the initial capacity of 64
        rows = np.column_stack([np.linspace(0, 1, n), np.linspace(1, 0, n)])
        index.bulk_insert(np.arange(n), rows)
        assert len(index) == n

    def test_bulk_insert_empty_is_noop(self):
        index = BlockDominanceIndex(2)
        index.bulk_insert(np.array([], dtype=int), np.empty((0, 2)))
        assert len(index) == 0
