"""Unit tests for repro.core.dataset.PointSet."""

import numpy as np
import pytest

from repro.core.dataset import PointSet


class TestConstruction:
    def test_basic(self):
        ps = PointSet(np.array([[1.0, 2.0], [3.0, 4.0]]))
        assert len(ps) == 2
        assert ps.dimensionality == 2
        assert list(ps.ids) == [0, 1]

    def test_explicit_ids(self):
        ps = PointSet(np.array([[1.0, 2.0]]), np.array([42]))
        assert list(ps.ids) == [42]

    def test_rejects_negative_coordinates(self):
        with pytest.raises(ValueError, match="non-negative"):
            PointSet(np.array([[1.0, -0.5]]))

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError, match="2-dimensional"):
            PointSet(np.array([1.0, 2.0]))

    def test_rejects_mismatched_ids(self):
        with pytest.raises(ValueError, match="ids shape"):
            PointSet(np.array([[1.0, 2.0]]), np.array([1, 2]))

    def test_values_are_read_only(self):
        ps = PointSet(np.array([[1.0, 2.0]]))
        with pytest.raises(ValueError):
            ps.values[0, 0] = 9.0

    def test_empty(self):
        ps = PointSet.empty(4)
        assert len(ps) == 0
        assert ps.dimensionality == 4

    def test_from_rows(self):
        ps = PointSet.from_rows([[1, 2], [3, 4]], ids=[7, 8])
        assert ps.by_id(7).tolist() == [1.0, 2.0]

    def test_integer_input_coerced_to_float(self):
        ps = PointSet(np.array([[1, 2]]))
        assert ps.values.dtype == np.float64


class TestConcat:
    def test_concat_preserves_ids(self):
        a = PointSet(np.array([[1.0, 2.0]]), np.array([1]))
        b = PointSet(np.array([[3.0, 4.0]]), np.array([2]))
        merged = PointSet.concat([a, b])
        assert merged.id_set() == {1, 2}

    def test_concat_skips_empty_parts(self):
        a = PointSet(np.array([[1.0, 2.0]]), np.array([1]))
        merged = PointSet.concat([PointSet.empty(2), a])
        assert len(merged) == 1

    def test_concat_rejects_all_empty(self):
        with pytest.raises(ValueError, match="zero non-empty"):
            PointSet.concat([PointSet.empty(2)])

    def test_concat_rejects_mixed_dimensionality(self):
        a = PointSet(np.array([[1.0, 2.0]]))
        b = PointSet(np.array([[1.0, 2.0, 3.0]]))
        with pytest.raises(ValueError, match="mismatched"):
            PointSet.concat([a, b])


class TestAccessors:
    def test_take(self):
        ps = PointSet(np.array([[1.0], [2.0], [3.0]]), np.array([10, 20, 30]))
        sub = ps.take([2, 0])
        assert list(sub.ids) == [30, 10]

    def test_mask(self):
        ps = PointSet(np.array([[1.0], [2.0], [3.0]]))
        sub = ps.mask(np.array([True, False, True]))
        assert len(sub) == 2

    def test_mask_shape_checked(self):
        ps = PointSet(np.array([[1.0], [2.0]]))
        with pytest.raises(ValueError, match="mask shape"):
            ps.mask(np.array([True]))

    def test_project(self):
        ps = PointSet(np.array([[1.0, 2.0, 3.0]]))
        assert ps.project((2, 0)).tolist() == [[3.0, 1.0]]

    def test_by_id_missing(self):
        ps = PointSet(np.array([[1.0]]))
        with pytest.raises(KeyError):
            ps.by_id(99)

    def test_iteration_yields_id_and_coords(self):
        ps = PointSet(np.array([[1.0, 2.0]]), np.array([5]))
        items = list(ps)
        assert items[0][0] == 5
        assert items[0][1].tolist() == [1.0, 2.0]

    def test_sorted_by(self):
        ps = PointSet(np.array([[3.0], [1.0], [2.0]]), np.array([0, 1, 2]))
        out = ps.sorted_by(ps.values[:, 0])
        assert list(out.ids) == [1, 2, 0]

    def test_sorted_by_is_stable(self):
        ps = PointSet(np.array([[1.0], [1.0], [0.5]]), np.array([0, 1, 2]))
        out = ps.sorted_by(ps.values[:, 0])
        assert list(out.ids) == [2, 0, 1]

    def test_equality(self):
        a = PointSet(np.array([[1.0, 2.0]]))
        b = PointSet(np.array([[1.0, 2.0]]))
        assert a == b

    def test_not_hashable(self):
        ps = PointSet(np.array([[1.0]]))
        with pytest.raises(TypeError):
            hash(ps)
