"""Unit tests for Algorithm 2 (threshold-based merge of sorted lists)."""

import math

import numpy as np
import pytest

from repro.core.dataset import PointSet
from repro.core.local_skyline import local_subspace_skyline
from repro.core.merging import merge_sorted_skylines
from repro.core.store import SortedByF
from tests.conftest import brute_force_skyline_ids

INDEX_KINDS = ("block", "list", "rtree")


def _split_local_skylines(rng, subspace, parts=4, n=200, d=5):
    points = PointSet(rng.random((n, d)))
    part_sets = [PointSet(points.values[i::parts], points.ids[i::parts]) for i in range(parts)]
    lists = [
        local_subspace_skyline(SortedByF.from_points(p), subspace).result for p in part_sets
    ]
    return points, lists


class TestCorrectness:
    @pytest.mark.parametrize("index_kind", INDEX_KINDS)
    def test_merge_equals_centralized(self, rng, index_kind):
        sub = (0, 2, 4)
        points, lists = _split_local_skylines(rng, sub)
        merged = merge_sorted_skylines(lists, sub, index_kind=index_kind)
        assert merged.points.id_set() == brute_force_skyline_ids(points, sub)

    def test_fast_and_heap_paths_agree(self, rng):
        sub = (1, 3)
        _points, lists = _split_local_skylines(rng, sub)
        fast = merge_sorted_skylines(lists, sub, index_kind="block")
        heap = merge_sorted_skylines(lists, sub, index_kind="list")
        assert fast.points.id_set() == heap.points.id_set()
        assert fast.threshold == pytest.approx(heap.threshold)

    def test_merge_of_single_list_is_idempotent(self, rng):
        sub = (0, 1)
        points = PointSet(rng.random((80, 3)))
        local = local_subspace_skyline(SortedByF.from_points(points), sub).result
        merged = merge_sorted_skylines([local], sub)
        assert merged.points.id_set() == local.points.id_set()

    def test_merge_composes(self, rng):
        """Progressive merging relies on merges being associative."""
        sub = (0, 2)
        points, lists = _split_local_skylines(rng, sub, parts=6)
        left = merge_sorted_skylines(lists[:3], sub).result
        right = merge_sorted_skylines(lists[3:], sub).result
        nested = merge_sorted_skylines([left, right], sub)
        flat = merge_sorted_skylines(lists, sub)
        assert nested.points.id_set() == flat.points.id_set()

    def test_result_is_f_sorted(self, rng):
        sub = (0, 1, 2)
        _points, lists = _split_local_skylines(rng, sub)
        merged = merge_sorted_skylines(lists, sub)
        assert np.all(np.diff(merged.result.f) >= 0)

    def test_strict_mode_merges_ext_skylines(self, rng):
        """The pre-processing merge: ext-skylines of partitions merge to
        the ext-skyline of the union."""
        sub = (0, 1, 2, 3, 4)
        points = PointSet(rng.random((150, 5)))
        parts = [PointSet(points.values[i::3], points.ids[i::3]) for i in range(3)]
        lists = [
            local_subspace_skyline(SortedByF.from_points(p), sub, strict=True).result
            for p in parts
        ]
        merged = merge_sorted_skylines(lists, sub, strict=True)
        assert merged.points.id_set() == brute_force_skyline_ids(points, sub, strict=True)


class TestEdgeCases:
    def test_no_lists(self):
        merged = merge_sorted_skylines([], (0, 1))
        assert len(merged.result) == 0
        assert merged.threshold == math.inf

    def test_empty_lists_skipped(self, rng):
        sub = (0, 1)
        points = PointSet(rng.random((40, 2)))
        local = local_subspace_skyline(SortedByF.from_points(points), sub).result
        merged = merge_sorted_skylines([SortedByF.empty(2), local], sub)
        assert merged.points.id_set() == local.points.id_set()

    def test_mismatched_dimensionalities_rejected(self, rng):
        a = SortedByF.from_points(PointSet(rng.random((5, 2))))
        b = SortedByF.from_points(PointSet(rng.random((5, 3))))
        with pytest.raises(ValueError, match="mismatched"):
            merge_sorted_skylines([a, b], (0, 1))

    def test_initial_threshold_respected(self, rng):
        sub = (0, 1)
        _points, lists = _split_local_skylines(rng, sub, d=4)
        unlimited = merge_sorted_skylines(lists, sub)
        capped = merge_sorted_skylines(lists, sub, initial_threshold=0.1)
        assert capped.points.id_set() <= unlimited.points.id_set()
        assert capped.threshold <= 0.1

    def test_examined_counts_early_termination(self, rng):
        sub = (0, 1)
        _points, lists = _split_local_skylines(rng, sub, n=400, d=6)
        merged = merge_sorted_skylines(lists, sub)
        assert merged.examined <= merged.input_size

    def test_duplicate_ids_across_lists_survive(self):
        """Identical points in two lists: neither dominates the other."""
        a = SortedByF.from_points(PointSet(np.array([[0.5, 0.5]]), np.array([1])))
        b = SortedByF.from_points(PointSet(np.array([[0.5, 0.5]]), np.array([2])))
        merged = merge_sorted_skylines([a, b], (0, 1))
        assert merged.points.id_set() == {1, 2}
