"""Unit tests for Algorithm 2 (threshold-based merge of sorted lists)."""

import math

import numpy as np
import pytest

from repro.core.dataset import PointSet
from repro.core.local_skyline import local_subspace_skyline
from repro.core.merging import IncrementalMerger, merge_sorted_skylines
from repro.core.store import SortedByF
from tests.conftest import brute_force_skyline_ids

INDEX_KINDS = ("block", "list", "rtree")


def _split_local_skylines(rng, subspace, parts=4, n=200, d=5):
    points = PointSet(rng.random((n, d)))
    part_sets = [PointSet(points.values[i::parts], points.ids[i::parts]) for i in range(parts)]
    lists = [
        local_subspace_skyline(SortedByF.from_points(p), subspace).result for p in part_sets
    ]
    return points, lists


class TestCorrectness:
    @pytest.mark.parametrize("index_kind", INDEX_KINDS)
    def test_merge_equals_centralized(self, rng, index_kind):
        sub = (0, 2, 4)
        points, lists = _split_local_skylines(rng, sub)
        merged = merge_sorted_skylines(lists, sub, index_kind=index_kind)
        assert merged.points.id_set() == brute_force_skyline_ids(points, sub)

    def test_fast_and_heap_paths_agree(self, rng):
        sub = (1, 3)
        _points, lists = _split_local_skylines(rng, sub)
        fast = merge_sorted_skylines(lists, sub, index_kind="block")
        heap = merge_sorted_skylines(lists, sub, index_kind="list")
        assert fast.points.id_set() == heap.points.id_set()
        assert fast.threshold == pytest.approx(heap.threshold)

    def test_merge_of_single_list_is_idempotent(self, rng):
        sub = (0, 1)
        points = PointSet(rng.random((80, 3)))
        local = local_subspace_skyline(SortedByF.from_points(points), sub).result
        merged = merge_sorted_skylines([local], sub)
        assert merged.points.id_set() == local.points.id_set()

    def test_merge_composes(self, rng):
        """Progressive merging relies on merges being associative."""
        sub = (0, 2)
        points, lists = _split_local_skylines(rng, sub, parts=6)
        left = merge_sorted_skylines(lists[:3], sub).result
        right = merge_sorted_skylines(lists[3:], sub).result
        nested = merge_sorted_skylines([left, right], sub)
        flat = merge_sorted_skylines(lists, sub)
        assert nested.points.id_set() == flat.points.id_set()

    def test_result_is_f_sorted(self, rng):
        sub = (0, 1, 2)
        _points, lists = _split_local_skylines(rng, sub)
        merged = merge_sorted_skylines(lists, sub)
        assert np.all(np.diff(merged.result.f) >= 0)

    def test_strict_mode_merges_ext_skylines(self, rng):
        """The pre-processing merge: ext-skylines of partitions merge to
        the ext-skyline of the union."""
        sub = (0, 1, 2, 3, 4)
        points = PointSet(rng.random((150, 5)))
        parts = [PointSet(points.values[i::3], points.ids[i::3]) for i in range(3)]
        lists = [
            local_subspace_skyline(SortedByF.from_points(p), sub, strict=True).result
            for p in parts
        ]
        merged = merge_sorted_skylines(lists, sub, strict=True)
        assert merged.points.id_set() == brute_force_skyline_ids(points, sub, strict=True)


class TestEdgeCases:
    def test_no_lists(self):
        merged = merge_sorted_skylines([], (0, 1))
        assert len(merged.result) == 0
        assert merged.threshold == math.inf

    def test_empty_lists_skipped(self, rng):
        sub = (0, 1)
        points = PointSet(rng.random((40, 2)))
        local = local_subspace_skyline(SortedByF.from_points(points), sub).result
        merged = merge_sorted_skylines([SortedByF.empty(2), local], sub)
        assert merged.points.id_set() == local.points.id_set()

    def test_mismatched_dimensionalities_rejected(self, rng):
        a = SortedByF.from_points(PointSet(rng.random((5, 2))))
        b = SortedByF.from_points(PointSet(rng.random((5, 3))))
        with pytest.raises(ValueError, match="mismatched"):
            merge_sorted_skylines([a, b], (0, 1))

    def test_initial_threshold_respected(self, rng):
        sub = (0, 1)
        _points, lists = _split_local_skylines(rng, sub, d=4)
        unlimited = merge_sorted_skylines(lists, sub)
        capped = merge_sorted_skylines(lists, sub, initial_threshold=0.1)
        assert capped.points.id_set() <= unlimited.points.id_set()
        assert capped.threshold <= 0.1

    def test_examined_counts_early_termination(self, rng):
        sub = (0, 1)
        _points, lists = _split_local_skylines(rng, sub, n=400, d=6)
        merged = merge_sorted_skylines(lists, sub)
        assert merged.examined <= merged.input_size

    def test_duplicate_ids_across_lists_survive(self):
        """Identical points in two lists: neither dominates the other."""
        a = SortedByF.from_points(PointSet(np.array([[0.5, 0.5]]), np.array([1])))
        b = SortedByF.from_points(PointSet(np.array([[0.5, 0.5]]), np.array([2])))
        merged = merge_sorted_skylines([a, b], (0, 1))
        assert merged.points.id_set() == {1, 2}


class TestProjectedStoreFullSpace:
    def test_projected_f_disables_sfs_fast_path(self):
        """Regression: a merge over every *projected* column must not
        claim the full-space SFS fast path.

        A projected store's ``f`` values are minima over the original
        space, not over the projected columns, so insertion in f-order
        does not guarantee no-eviction: here ``b`` arrives second yet
        dominates ``a``.  With the fast path wrongly engaged (chunked
        scans make ``a`` visible before ``b`` is inserted) the merge
        would keep both.
        """
        store = SortedByF(
            points=PointSet(np.array([[0.5, 0.9], [0.3, 0.8]]), np.array([1, 2])),
            f=np.array([0.1, 0.3]),
        )
        merged = merge_sorted_skylines([store], (0, 1), scan_chunk=1)
        assert merged.points.id_set() == {2}

    def test_true_full_space_fast_path_still_exact(self, rng):
        points = PointSet(rng.random((60, 3)))
        local = local_subspace_skyline(SortedByF.from_points(points), (0, 1, 2)).result
        merged = merge_sorted_skylines([local], (0, 1, 2), scan_chunk=1)
        assert merged.points.id_set() == brute_force_skyline_ids(points, (0, 1, 2))


class TestIncrementalMerger:
    def _runs(self, rng, sub, parts=4, n=160, d=5):
        return _split_local_skylines(rng, sub, parts=parts, n=n, d=d)

    def test_feeding_matches_buffered_and_oracle(self, rng):
        sub = (0, 2, 4)
        points, lists = self._runs(rng, sub)
        merger = IncrementalMerger(sub)
        for run in lists:
            merger.feed(run)
        streamed = merger.result()
        buffered = merge_sorted_skylines(lists, sub)
        assert streamed.result.points.id_set() == buffered.result.points.id_set()
        assert streamed.result.points.id_set() == brute_force_skyline_ids(points, sub)

    def test_feed_order_never_changes_result(self, rng):
        sub = (1, 3)
        points, lists = self._runs(rng, sub)
        expected = brute_force_skyline_ids(points, sub)
        for order in ((0, 1, 2, 3), (3, 2, 1, 0), (2, 0, 3, 1)):
            merger = IncrementalMerger(sub)
            for i in order:
                merger.feed(lists[i])
            assert merger.result().result.points.id_set() == expected, order

    def test_result_is_f_sorted_and_composes(self, rng):
        sub = (0, 1)
        points, lists = self._runs(rng, sub, parts=6)
        left = IncrementalMerger(sub)
        for run in lists[:3]:
            left.feed(run)
        right = IncrementalMerger(sub)
        for run in lists[3:]:
            right.feed(run)
        outer = IncrementalMerger(sub)
        outer.feed(left.result().result)
        outer.feed(right.result().result)
        final = outer.result().result
        assert np.all(np.diff(final.f) >= 0)
        assert final.points.id_set() == brute_force_skyline_ids(points, sub)

    def test_whole_run_beyond_threshold_is_pruned(self):
        sub = (0, 1)
        good = SortedByF.from_points(
            PointSet(np.array([[0.1, 0.1]]), np.array([1]))
        )
        late = SortedByF.from_points(
            PointSet(np.array([[0.9, 0.8], [0.95, 0.85]]), np.array([2, 3]))
        )
        merger = IncrementalMerger(sub)
        assert merger.feed(good) == 1
        assert merger.feed(late) == 0  # min f 0.8 > threshold 0.1
        assert merger.runs_pruned == 1
        assert merger.result().result.points.id_set() == {1}

    def test_empty_runs_are_noops(self, rng):
        sub = (0, 1)
        points = PointSet(rng.random((30, 2)))
        local = local_subspace_skyline(SortedByF.from_points(points), sub).result
        merger = IncrementalMerger(sub)
        merger.feed(SortedByF.empty(2))
        merger.feed(local)
        merger.feed(SortedByF.empty(2))
        assert merger.runs_pruned == 0
        assert merger.result().result.points.id_set() == local.points.id_set()

    def test_work_accounting_accumulates(self, rng):
        sub = (0, 2)
        _points, lists = self._runs(rng, sub)
        merger = IncrementalMerger(sub)
        for run in lists:
            merger.feed(run)
        outcome = merger.result()
        assert merger.runs_fed == len(lists)
        assert merger.input_size == sum(len(r) for r in lists)
        assert outcome.examined <= outcome.input_size
        assert merger.comparisons > 0
        assert merger.compute_seconds > 0
