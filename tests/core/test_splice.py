"""Sorted-splice invariants of ``SortedByF.splice_insert``/``splice_delete``."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dataset import PointSet
from repro.core.store import SortedByF


def _points(rng: np.random.Generator, n: int, d: int, start_id: int = 0) -> PointSet:
    return PointSet(rng.random((n, d)), np.arange(start_id, start_id + n))


def _assert_stores_equal(a: SortedByF, b: SortedByF) -> None:
    assert np.array_equal(a.points.values, b.points.values)
    assert np.array_equal(a.points.ids, b.points.ids)
    assert np.array_equal(a.f, b.f)


class TestSpliceInsert:
    def test_matches_full_resort(self):
        rng = np.random.default_rng(7)
        base = SortedByF.from_points(_points(rng, 40, 4))
        incoming = _points(rng, 9, 4, start_id=1000)
        spliced = base.splice_insert(incoming)
        rebuilt = SortedByF.from_points(PointSet.concat([base.points, incoming]))
        _assert_stores_equal(spliced, rebuilt)

    def test_f_order_invariant(self):
        rng = np.random.default_rng(8)
        store = SortedByF.from_points(_points(rng, 25, 3))
        for round_ in range(4):
            store = store.splice_insert(
                _points(rng, 5, 3, start_id=500 + 100 * round_)
            )
            assert np.all(np.diff(store.f) >= 0)

    def test_tied_keys_match_stable_sort(self):
        """Duplicate rows give equal f keys; side='right' must reproduce
        the stable-sort order of from_points over [existing, new]."""
        rng = np.random.default_rng(9)
        values = rng.random((10, 3))
        base = SortedByF.from_points(PointSet(values, np.arange(10)))
        dupes = PointSet(values[:4].copy(), np.arange(100, 104))
        spliced = base.splice_insert(dupes)
        rebuilt = SortedByF.from_points(PointSet.concat([base.points, dupes]))
        _assert_stores_equal(spliced, rebuilt)

    def test_empty_insert_returns_self(self):
        rng = np.random.default_rng(10)
        store = SortedByF.from_points(_points(rng, 10, 3))
        assert store.splice_insert(PointSet.empty(3)) is store

    def test_insert_into_empty_store(self):
        rng = np.random.default_rng(11)
        incoming = _points(rng, 6, 4)
        spliced = SortedByF.empty(4).splice_insert(incoming)
        _assert_stores_equal(spliced, SortedByF.from_points(incoming))


class TestSpliceDelete:
    def test_matches_full_resort(self):
        rng = np.random.default_rng(12)
        base = SortedByF.from_points(_points(rng, 40, 4))
        doomed = base.points.ids[::3]
        spliced = base.splice_delete(doomed)
        keep = ~np.isin(base.points.ids, doomed)
        rebuilt = SortedByF.from_points(base.points.mask(keep))
        _assert_stores_equal(spliced, rebuilt)

    def test_absent_ids_ignored(self):
        rng = np.random.default_rng(13)
        store = SortedByF.from_points(_points(rng, 10, 3))
        assert store.splice_delete([10**9]) is store
        assert store.splice_delete(np.zeros(0, dtype=np.int64)) is store

    def test_delete_everything(self):
        rng = np.random.default_rng(14)
        store = SortedByF.from_points(_points(rng, 10, 3))
        emptied = store.splice_delete(store.points.ids)
        assert len(emptied) == 0
        assert emptied.dimensionality == 3


class TestProjectionCacheConsistency:
    @pytest.mark.parametrize("subspace", [(0, 2), (1,), (0, 1, 2, 3)])
    def test_insert_patches_warm_projection(self, subspace):
        rng = np.random.default_rng(15)
        base = SortedByF.from_points(_points(rng, 30, 4))
        base.projection(subspace)  # warm the cache
        spliced = base.splice_insert(_points(rng, 7, 4, start_id=900))
        assert spliced.has_projection(subspace)
        proj, dists = spliced.projection(subspace)
        fresh = SortedByF.from_trusted(spliced.points, spliced.f)
        fproj, fdists = fresh.projection(subspace)
        assert np.array_equal(proj, fproj)
        assert np.array_equal(dists, fdists)

    @pytest.mark.parametrize("subspace", [(0, 2), (1,), (0, 1, 2, 3)])
    def test_delete_patches_warm_projection(self, subspace):
        rng = np.random.default_rng(16)
        base = SortedByF.from_points(_points(rng, 30, 4))
        base.projection(subspace)
        spliced = base.splice_delete(base.points.ids[5:15])
        assert spliced.has_projection(subspace)
        proj, dists = spliced.projection(subspace)
        fresh = SortedByF.from_trusted(spliced.points, spliced.f)
        fproj, fdists = fresh.projection(subspace)
        assert np.array_equal(proj, fproj)
        assert np.array_equal(dists, fdists)

    def test_cold_cache_not_installed(self):
        rng = np.random.default_rng(17)
        base = SortedByF.from_points(_points(rng, 10, 3))
        spliced = base.splice_insert(_points(rng, 3, 3, start_id=50))
        assert not spliced.has_projection((0, 1))

    def test_position_dependent_caches_drop(self):
        """R-tree and SaLSa orders index store positions — they must
        rebuild after a splice, not survive it stale."""
        rng = np.random.default_rng(18)
        base = SortedByF.from_points(_points(rng, 20, 3))
        base.salsa_order((0, 1))
        base.rtree((0, 1))
        spliced = base.splice_insert(_points(rng, 4, 3, start_id=60))
        assert spliced._salsa is None
        assert spliced._rtrees is None
        order, keys = spliced.salsa_order((0, 1))
        assert order.shape == (24,)
        assert np.all(np.diff(keys) >= 0)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 2**16),
    n=st.integers(1, 40),
    k=st.integers(1, 12),
    d=st.integers(2, 5),
)
def test_splice_roundtrip_equals_resort(seed, n, k, d):
    """Insert then delete arbitrary subsets: always byte-equal to the
    from-scratch re-sort of the same point set."""
    rng = np.random.default_rng(seed)
    base = SortedByF.from_points(_points(rng, n, d))
    base.projection(tuple(range(d)))
    incoming = _points(rng, k, d, start_id=10_000)
    spliced = base.splice_insert(incoming)
    union = PointSet.concat([base.points, incoming])
    _assert_stores_equal(spliced, SortedByF.from_points(union))
    doomed = rng.choice(union.ids, size=min(k, len(union)), replace=False)
    after = spliced.splice_delete(doomed)
    survivors = union.mask(~np.isin(union.ids, doomed))
    _assert_stores_equal(after, SortedByF.from_points(survivors))
    proj, dists = after.projection(tuple(range(d)))
    assert np.array_equal(proj, after.points.values)
    if len(after):
        assert np.array_equal(dists, after.points.values.max(axis=1))
