"""The public API surface: everything README/examples rely on."""

import numpy as np

import repro


class TestExports:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_docstring_flow(self):
        """The module docstring's quickstart, executed."""
        net = repro.SuperPeerNetwork.build(
            n_peers=100, points_per_peer=50, dimensionality=6, seed=7
        )
        query = repro.Query(subspace=(0, 2, 5), initiator=net.topology.superpeer_ids[0])
        answer = repro.execute_query(net, query, repro.Variant.FTPM)
        assert len(answer.result.points) > 0

    def test_centralized_helpers_exported(self, rng):
        points = repro.PointSet(rng.random((50, 4)))
        sky = repro.subspace_skyline_points(points, (0, 2))
        ext = repro.extended_skyline_points(points)
        assert sky.id_set() <= ext.id_set()

    def test_constrained_query_exported(self, rng):
        points = repro.PointSet(rng.random((50, 3)))
        constraint = repro.RangeConstraint.from_dict({0: (0.0, 0.5)})
        out = repro.constrained_subspace_skyline(points, (0, 1), constraint)
        assert all(v[0] <= 0.5 for _i, v in out)

    def test_churn_exported(self):
        net = repro.SuperPeerNetwork.build(
            n_peers=10, points_per_peer=10, dimensionality=3, seed=1
        )
        event = repro.join_peer(
            net, net.topology.superpeer_ids[0],
            repro.PointSet(np.random.default_rng(0).random((5, 3)),
                           np.arange(10_000, 10_005)),
        )
        assert event.kind == "join"
        repro.fail_peer(net, event.peer_id)
