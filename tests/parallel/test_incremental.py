"""Incremental epochs: per-slot republish, worker refresh, apply_update."""

from __future__ import annotations

import copy
import glob
import os

import numpy as np
import pytest

from repro.core.dataset import PointSet
from repro.data.workload import Query
from repro.p2p.churn import fail_superpeer, join_peer
from repro.p2p.network import SuperPeerNetwork
from repro.p2p.topology import Topology
from repro.p2p.updates import insert_points
from repro.p2p.workload import fresh_points
from repro.parallel import ParallelEngine, shm_supported
from repro.parallel.shm import attach_network, manifest_data_nbytes, publish_network
from repro.skypeer.executor import execute_query
from repro.skypeer.variants import Variant

pytestmark = pytest.mark.skipif(
    not shm_supported(), reason="POSIX shared memory unavailable"
)


def build_network(seed: int = 3, d: int = 4, n_superpeers: int = 3) -> SuperPeerNetwork:
    rng = np.random.default_rng(seed)
    topo = Topology.generate(
        n_peers=3 * n_superpeers, n_superpeers=n_superpeers, degree=3.0, seed=seed
    )
    partitions = {}
    next_id = 0
    for peers in topo.peers_of.values():
        for pid in peers:
            partitions[pid] = PointSet(
                rng.random((10, d)), np.arange(next_id, next_id + 10)
            )
            next_id += 10
    return SuperPeerNetwork.from_partitions(topo, partitions)


def _shm_leaks() -> list[str]:
    return glob.glob(f"/dev/shm/repro-shm-{os.getpid():x}-*")


def _attached_equals_network(attached, network) -> None:
    for sp_id, superpeer in network.superpeers.items():
        mirror = attached.network.superpeers[sp_id]
        assert np.array_equal(mirror.store.points.values, superpeer.store.points.values)
        assert np.array_equal(mirror.store.points.ids, superpeer.store.points.ids)
        assert np.array_equal(mirror.store.f, superpeer.store.f)
    for pid, peer in network.peers.items():
        mirror = attached.network.peers[pid]
        assert np.array_equal(mirror.data.values, peer.data.values)
        assert np.array_equal(mirror.data.ids, peer.data.ids)


# ----------------------------------------------------------------------
# slot republish (publisher side)
# ----------------------------------------------------------------------
class TestRepublish:
    def test_republish_touches_only_the_named_slots(self):
        network = build_network()
        shared = publish_network(network)
        try:
            before = copy.deepcopy(shared.manifest)
            target = sorted(network.superpeers)[0]
            peer_id = network.topology.peers_of[target][0]
            insert_points(network, peer_id, fresh_points(network, 3, seed=5))
            nbytes = shared.republish(network, [target])
            manifest = shared.manifest
            assert manifest["subepoch"] == before["subepoch"] + 1
            assert manifest["generations"][target] == before["generations"][target] + 1
            assert nbytes == manifest["slot_nbytes"][target]
            assert target in manifest["overlays"]
            for sp in network.superpeers:
                if sp != target:
                    assert manifest["generations"][sp] == before["generations"][sp]
                    assert sp not in manifest["overlays"]
        finally:
            shared.close()
        assert _shm_leaks() == []

    def test_republished_slot_is_smaller_than_the_publication(self):
        network = build_network()
        shared = publish_network(network)
        try:
            target = sorted(network.superpeers)[0]
            peer_id = network.topology.peers_of[target][0]
            insert_points(network, peer_id, fresh_points(network, 2, seed=6))
            delta = shared.republish(network, [target])
            assert 0 < delta < manifest_data_nbytes(shared.manifest)
        finally:
            shared.close()

    def test_superseded_overlays_are_retired_not_leaked(self):
        network = build_network()
        shared = publish_network(network)
        try:
            target = sorted(network.superpeers)[0]
            peer_id = network.topology.peers_of[target][0]
            for seed in (7, 8):
                insert_points(network, peer_id, fresh_points(network, 1, seed=seed))
                shared.republish(network, [target])
            assert shared.reap_retired() == 1  # the first overlay, superseded
            assert shared.reap_retired() == 0
        finally:
            shared.close()
        assert _shm_leaks() == []


# ----------------------------------------------------------------------
# slot refresh (worker side)
# ----------------------------------------------------------------------
class TestRefresh:
    def test_refresh_mirrors_the_republished_slot(self):
        network = build_network()
        shared = publish_network(network)
        attached = None
        try:
            attached = attach_network(shared.manifest)
            target = sorted(network.superpeers)[0]
            peer_id = network.topology.peers_of[target][0]
            insert_points(network, peer_id, fresh_points(network, 4, seed=9))
            shared.republish(network, [target])
            delta = attached.refresh(shared.manifest)
            assert delta["slots"] == 1
            assert delta["bytes"] == shared.manifest["slot_nbytes"][target]
            _attached_equals_network(attached, network)
        finally:
            if attached is not None:
                attached.close()
            shared.close()
        assert _shm_leaks() == []

    def test_refresh_same_subepoch_is_a_noop(self):
        network = build_network()
        shared = publish_network(network)
        attached = None
        try:
            attached = attach_network(shared.manifest)
            assert attached.refresh(shared.manifest) == {"slots": 0, "bytes": 0}
        finally:
            if attached is not None:
                attached.close()
            shared.close()

    def test_refresh_rejects_superpeer_set_surgery(self):
        network = build_network()
        shared = publish_network(network)
        attached = None
        try:
            attached = attach_network(shared.manifest)
            mangled = copy.deepcopy(shared.manifest)
            mangled["subepoch"] += 1
            doomed = sorted(mangled["generations"])[0]
            del mangled["generations"][doomed]
            with pytest.raises(ValueError):
                attached.refresh(mangled)
        finally:
            if attached is not None:
                attached.close()
            shared.close()

    def test_sequential_updates_converge_to_the_live_network(self):
        network = build_network()
        shared = publish_network(network)
        attached = None
        try:
            attached = attach_network(shared.manifest)
            superpeers = sorted(network.superpeers)
            join_peer(network, superpeers[1], fresh_points(network, 5, seed=10))
            shared.republish(network, [superpeers[1]])
            attached.refresh(shared.manifest)
            peer_id = network.topology.peers_of[superpeers[0]][0]
            insert_points(network, peer_id, fresh_points(network, 3, seed=11))
            shared.republish(network, [superpeers[0]])
            attached.refresh(shared.manifest)
            _attached_equals_network(attached, network)
            assert attached.network.store_generations == network.store_generations
        finally:
            if attached is not None:
                attached.close()
            shared.close()
        assert _shm_leaks() == []


# ----------------------------------------------------------------------
# engine.apply_update (end to end)
# ----------------------------------------------------------------------
class TestApplyUpdate:
    def _queries(self, network):
        return [
            Query(subspace=s, initiator=network.topology.superpeer_ids[0])
            for s in ((0, 1, 2), (1, 3))
        ]

    def test_insert_refreshes_the_live_publication_incrementally(self):
        network = build_network()
        queries = self._queries(network)
        with ParallelEngine(2, use_shm=True) as engine:
            engine.run_queries(network, queries, [Variant.FTPM])
            publications_before = engine.stats.publications
            peer_id = sorted(network.peers)[0]
            report = engine.apply_update(
                network, "insert", peer_id=peer_id,
                points=fresh_points(network, 3, seed=12),
            )
            assert not report.full_republish
            assert report.touched_superpeers == (
                network.topology.superpeer_of_peer(peer_id),
            )
            assert 0 < report.republished_bytes <= report.slot_nbytes
            assert report.slot_nbytes < report.total_nbytes
            assert engine.stats.publications == publications_before
            assert engine.stats.incremental_republishes == 1
            assert engine.stats.updates_applied == 1
            assert engine.stats.republished_bytes == report.republished_bytes
            # Post-update answers are byte-identical to a serial run on
            # the live (mutated) network.
            live = engine.run_queries(network, queries, [Variant.FTPM])[Variant.FTPM]
            for query, execution in zip(queries, live):
                reference = execute_query(network, query, Variant.FTPM)
                assert np.array_equal(
                    execution.result.points.ids, reference.result.points.ids
                )
                assert np.array_equal(
                    execution.result.points.values, reference.result.points.values
                )
                assert np.array_equal(execution.result.f, reference.result.f)
        assert _shm_leaks() == []

    def test_superpeer_failure_falls_back_to_full_republish(self):
        network = build_network(n_superpeers=3)
        queries = self._queries(network)
        with ParallelEngine(2, use_shm=True) as engine:
            engine.run_queries(network, queries, [Variant.FTPM])
            doomed = sorted(network.superpeers)[-1]
            report = engine.apply_update(
                network, "fail-superpeer", superpeer_id=doomed
            )
            assert report.full_republish
            assert engine.stats.full_republishes == 1
            live = engine.run_queries(network, queries, [Variant.FTPM])[Variant.FTPM]
            reference = execute_query(network, queries[0], Variant.FTPM)
            assert np.array_equal(
                live[0].result.points.ids, reference.result.points.ids
            )
        assert _shm_leaks() == []

    def test_update_on_unpublished_network_reports_no_bytes(self):
        network = build_network()
        with ParallelEngine(2, use_shm=True) as engine:
            report = engine.apply_update(
                network, "insert", peer_id=sorted(network.peers)[0],
                points=fresh_points(network, 2, seed=13),
            )
            assert report.republished_bytes == 0
            assert not report.full_republish
            assert report.touched_superpeers
        assert _shm_leaks() == []

    def test_apply_update_rejects_unknown_kind(self):
        network = build_network()
        with ParallelEngine(2, use_shm=True) as engine:
            with pytest.raises(ValueError):
                engine.apply_update(network, "shuffle")

    def test_untouched_slot_cache_entries_survive_an_update(self):
        """Block-cache invalidation is (slot, generation)-keyed: an update
        to one super-peer must not evict the others' cached scans."""
        network = build_network()
        queries = self._queries(network)
        with ParallelEngine(2, use_shm=True) as engine:
            engine.run_queries(network, queries, [Variant.FTPM])
            engine.run_queries(network, queries, [Variant.FTPM])  # warm
            warm_hits = engine.stats.cache_hits
            assert warm_hits > 0
            peer_id = sorted(network.peers)[0]
            engine.apply_update(
                network, "insert", peer_id=peer_id,
                points=fresh_points(network, 2, seed=14),
            )
            engine.run_queries(network, queries, [Variant.FTPM])
            assert engine.stats.cache_hits > warm_hits
        assert _shm_leaks() == []


def test_fail_superpeer_bumps_only_adopters():
    network = build_network(n_superpeers=3)
    doomed = sorted(network.superpeers)[-1]
    before = dict(network.store_generations)
    event = fail_superpeer(network, doomed)
    assert doomed not in network.store_generations
    adopters = set(event.adoptions.values()) if hasattr(event, "adoptions") else None
    for sp, gen in network.store_generations.items():
        if adopters is None or sp in adopters:
            assert gen >= before[sp]
