"""Unit tests for the pool-engine knobs (no processes spawned here)."""

from __future__ import annotations

import multiprocessing
import os

import pytest

from repro.parallel import (
    default_workers,
    resolve_workers,
    set_default_workers,
    start_method,
)


@pytest.fixture(autouse=True)
def _clean_ambient(monkeypatch):
    """Every test starts with no ambient worker count and a clean env."""
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    monkeypatch.delenv("REPRO_MP_START", raising=False)
    set_default_workers(None)
    yield
    set_default_workers(None)


class TestResolveWorkers:
    def test_none_means_serial_without_ambient(self):
        assert resolve_workers(None) == 1

    def test_zero_and_one_mean_serial(self):
        assert resolve_workers(0) == 1
        assert resolve_workers(1) == 1

    def test_explicit_count_passes_through(self):
        assert resolve_workers(5) == 5

    def test_negative_means_one_per_cpu(self):
        assert resolve_workers(-1) == max(1, os.cpu_count() or 1)

    def test_none_consults_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert resolve_workers(None) == 3

    def test_none_consults_set_default(self):
        set_default_workers(4)
        assert resolve_workers(None) == 4

    def test_set_default_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        set_default_workers(4)
        assert resolve_workers(None) == 4

    def test_use_default_off_ignores_ambient(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        set_default_workers(4)
        assert resolve_workers(None, use_default=False) == 1

    def test_explicit_beats_ambient(self):
        set_default_workers(4)
        assert resolve_workers(2) == 2


class TestDefaultWorkers:
    def test_unset_is_none(self):
        assert default_workers() is None

    def test_set_and_reset(self):
        set_default_workers(6)
        assert default_workers() == 6
        set_default_workers(None)
        assert default_workers() is None


class TestStartMethod:
    def test_default_is_available(self):
        assert start_method() in multiprocessing.get_all_start_methods()

    def test_env_override_honored(self, monkeypatch):
        method = multiprocessing.get_all_start_methods()[0]
        monkeypatch.setenv("REPRO_MP_START", method)
        assert start_method() == method

    def test_unknown_method_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_MP_START", "teleport")
        with pytest.raises(ValueError, match="teleport"):
            start_method()


class TestCliAmbientScope:
    def test_context_manager_sets_and_restores(self):
        from repro.cli import _ambient_workers

        with _ambient_workers(3):
            assert default_workers() == 3
        assert default_workers() is None

    def test_none_is_a_no_op(self):
        from repro.cli import _ambient_workers

        set_default_workers(7)
        with _ambient_workers(None):
            assert default_workers() == 7
        assert default_workers() == 7


class TestAffinityChunks:
    """Subspace-affine batching: deterministic, index-complete, grouped."""

    @staticmethod
    def _make(subspaces, variants):
        from repro.data.workload import Query
        from repro.parallel.engine import _affinity_chunks
        from repro.skypeer.variants import Variant

        queries = [Query(subspace=s, initiator=0) for s in subspaces]
        return _affinity_chunks(queries, [Variant.parse(v) for v in variants], workers=2)

    def test_covers_every_task_exactly_once(self):
        chunks = self._make([(0, 1), (1, 2), (0, 1)], ["FTPM", "RTFM"])
        indices = sorted(i for chunk in chunks for i, _, _ in chunk)
        assert indices == list(range(6))

    def test_same_subspace_lands_in_same_chunk(self):
        # 3 tasks per subspace (across 2 queries x ... ) stay together
        # while the target chunk size allows.
        chunks = self._make([(0, 1), (1, 2)], ["FTPM"])
        for chunk in chunks:
            assert len({q.subspace for _, q, _ in chunk}) == 1

    def test_variants_share_their_query_subspace_chunk(self):
        # 16 tasks / 2 workers -> chunk target 2: the two variant-tasks
        # of the lone (0, 2) query target the same projection cache and
        # ride the same chunk (affinity groups span variants).
        chunks = self._make([(0, 2)] + [(1, 2)] * 7, ["FTPM", "RTFM"])
        lone = [c for c in chunks if any(q.subspace == (0, 2) for _, q, _ in c)]
        assert len(lone) == 1
        assert sorted(v for _, _, v in lone[0]) == ["FTPM", "RTFM"]

    def test_indices_follow_serial_iteration_order(self):
        from repro.data.workload import Query
        from repro.parallel.engine import _affinity_chunks
        from repro.skypeer.variants import Variant

        queries = [Query(subspace=(0, 1), initiator=0), Query(subspace=(1, 2), initiator=0)]
        variants = [Variant.FTPM, Variant.RTFM]
        chunks = _affinity_chunks(queries, variants, workers=2)
        expected = {}
        index = 0
        for v in variants:
            for q in queries:
                expected[index] = (q.subspace, v.value)
                index += 1
        for chunk in chunks:
            for i, q, value in chunk:
                assert expected[i] == (q.subspace, value)

    def test_oversized_groups_split(self):
        chunks = self._make([(0, 1)] * 40, ["FTPM"])
        assert len(chunks) > 1
        assert sum(len(c) for c in chunks) == 40


class TestPersistentEngine:
    def test_get_engine_reuses_instance(self):
        from repro.parallel import get_engine, shutdown_engines

        try:
            a = get_engine(2)
            b = get_engine(2)
            assert a is b
            assert not a.closed
        finally:
            shutdown_engines()

    def test_get_engine_keyed_on_shm_toggle(self, monkeypatch):
        from repro.parallel import get_engine, shutdown_engines
        from repro.parallel.shm import shm_supported

        if not shm_supported():
            pytest.skip("no shared memory on this platform")
        try:
            monkeypatch.delenv("REPRO_SHM", raising=False)
            a = get_engine(2)
            monkeypatch.setenv("REPRO_SHM", "0")
            b = get_engine(2)
            assert a is not b
            assert a.use_shm and not b.use_shm
        finally:
            monkeypatch.delenv("REPRO_SHM", raising=False)
            shutdown_engines()

    def test_shutdown_closes_engines(self):
        from repro.parallel import get_engine, shutdown_engines

        engine = get_engine(2)
        shutdown_engines()
        assert engine.closed

    def test_closed_engine_rejects_work(self):
        from repro.parallel import ParallelEngine

        engine = ParallelEngine(workers=1)
        engine.close()
        with pytest.raises(RuntimeError, match="closed"):
            engine.run_queries(None, [], [])

    def test_stats_fields_populate(self):
        from repro.data.workload import Query
        from repro.p2p.network import SuperPeerNetwork
        from repro.parallel import ParallelEngine

        network = SuperPeerNetwork.build(
            n_peers=6, points_per_peer=10, dimensionality=3, seed=0
        )
        with ParallelEngine(workers=2) as engine:
            query = Query(subspace=(0, 1), initiator=network.topology.superpeer_ids[0])
            engine.run_queries(network, [query, query], ["FTPM", "RTFM"])
            stats = engine.stats.as_dict()
        assert stats["pool_startup_seconds"] > 0
        assert stats["publications"] == 1
        assert stats["tasks"] == 4
        assert stats["batches"] >= 1
        assert stats["submit_seconds"] > 0
        assert stats["dispatch_overhead_per_task_seconds"] > 0
        assert stats["attach_count"] >= 1

    def test_publication_refreshes_on_epoch_bump(self):
        from repro.data.workload import Query
        from repro.p2p.network import SuperPeerNetwork
        from repro.parallel import ParallelEngine

        network = SuperPeerNetwork.build(
            n_peers=6, points_per_peer=10, dimensionality=3, seed=0
        )
        with ParallelEngine(workers=2) as engine:
            query = Query(subspace=(0, 1), initiator=network.topology.superpeer_ids[0])
            engine.run_queries(network, [query], ["FTPM"])
            assert engine.stats.publications == 1
            network.preprocess()  # bumps the epoch: stores were rebuilt
            engine.run_queries(network, [query], ["FTPM"])
            assert engine.stats.publications == 2
