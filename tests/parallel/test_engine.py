"""Unit tests for the pool-engine knobs (no processes spawned here)."""

from __future__ import annotations

import multiprocessing
import os

import pytest

from repro.parallel import (
    default_workers,
    resolve_workers,
    set_default_workers,
    start_method,
)


@pytest.fixture(autouse=True)
def _clean_ambient(monkeypatch):
    """Every test starts with no ambient worker count and a clean env."""
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    monkeypatch.delenv("REPRO_MP_START", raising=False)
    set_default_workers(None)
    yield
    set_default_workers(None)


class TestResolveWorkers:
    def test_none_means_serial_without_ambient(self):
        assert resolve_workers(None) == 1

    def test_zero_and_one_mean_serial(self):
        assert resolve_workers(0) == 1
        assert resolve_workers(1) == 1

    def test_explicit_count_passes_through(self):
        assert resolve_workers(5) == 5

    def test_negative_means_one_per_cpu(self):
        assert resolve_workers(-1) == max(1, os.cpu_count() or 1)

    def test_none_consults_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert resolve_workers(None) == 3

    def test_none_consults_set_default(self):
        set_default_workers(4)
        assert resolve_workers(None) == 4

    def test_set_default_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        set_default_workers(4)
        assert resolve_workers(None) == 4

    def test_use_default_off_ignores_ambient(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        set_default_workers(4)
        assert resolve_workers(None, use_default=False) == 1

    def test_explicit_beats_ambient(self):
        set_default_workers(4)
        assert resolve_workers(2) == 2


class TestDefaultWorkers:
    def test_unset_is_none(self):
        assert default_workers() is None

    def test_set_and_reset(self):
        set_default_workers(6)
        assert default_workers() == 6
        set_default_workers(None)
        assert default_workers() is None


class TestStartMethod:
    def test_default_is_available(self):
        assert start_method() in multiprocessing.get_all_start_methods()

    def test_env_override_honored(self, monkeypatch):
        method = multiprocessing.get_all_start_methods()[0]
        monkeypatch.setenv("REPRO_MP_START", method)
        assert start_method() == method

    def test_unknown_method_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_MP_START", "teleport")
        with pytest.raises(ValueError, match="teleport"):
            start_method()


class TestCliAmbientScope:
    def test_context_manager_sets_and_restores(self):
        from repro.cli import _ambient_workers

        with _ambient_workers(3):
            assert default_workers() == 3
        assert default_workers() is None

    def test_none_is_a_no_op(self):
        from repro.cli import _ambient_workers

        set_default_workers(7)
        with _ambient_workers(None):
            assert default_workers() == 7
        assert default_workers() == 7
