"""Cached-vs-uncached differential: cache hits are byte-identical replays.

A cached Algorithm 1 scan must reproduce the exact result *and* the
exact deterministic accounting (comparisons, examined counts, message
volume) of the scan that published it — the cache stores the scan's
positions and counters and replays them, so nothing downstream can tell
a hit from a recomputation.  Every test runs the same workload with the
cache forced on (two passes, so the second is all hits) and forced off,
and demands equality against the serial reference and the centralized
``skyline_mask`` oracle for all five variants.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.dataset import PointSet
from repro.core.dominance import skyline_mask
from repro.data.workload import Query
from repro.p2p.network import SuperPeerNetwork
from repro.p2p.topology import Topology
from repro.parallel import ParallelEngine, shm_supported
from repro.skypeer.executor import execute_query
from repro.skypeer.variants import Variant

DETERMINISTIC = (
    "comparisons",
    "message_count",
    "volume_bytes",
    "critical_path_examined",
)


def _network(seed: int = 11, d: int = 4) -> SuperPeerNetwork:
    rng = np.random.default_rng(seed)
    topo = Topology.generate(n_peers=9, n_superpeers=3, degree=3.0, seed=seed)
    partitions = {}
    next_id = 0
    for peers in topo.peers_of.values():
        for pid in peers:
            partitions[pid] = PointSet(
                rng.random((12, d)), np.arange(next_id, next_id + 12)
            )
            next_id += 12
    return SuperPeerNetwork.from_partitions(topo, partitions)


def _queries(network: SuperPeerNetwork) -> list[Query]:
    initiators = sorted(network.superpeers)
    subspaces = [(0, 1), (0, 1), (1, 3), (0, 2, 3), (1, 3)]
    return [
        Query(subspace=sp, initiator=initiators[i % len(initiators)])
        for i, sp in enumerate(subspaces)
    ]


def _assert_matches(serial, cached, label: str) -> None:
    for variant, executions in serial.items():
        for s, c in zip(executions, cached[variant]):
            assert s.result_ids == c.result_ids, (label, variant)
            assert np.array_equal(s.result.points.values, c.result.points.values)
            for field in DETERMINISTIC:
                assert getattr(s, field) == getattr(c, field), (label, variant, field)


class TestCachedMatchesUncached:
    def test_two_cached_passes_match_serial_and_oracle(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM_CACHE", "1")
        network = _network()
        queries = _queries(network)
        variants = list(Variant)
        serial = {v: [execute_query(network, q, v) for q in queries] for v in variants}

        with ParallelEngine(2, use_shm=shm_supported()) as engine:
            cold = engine.run_queries(network, queries, variants)
            warm = engine.run_queries(network, queries, variants)
            assert engine.stats.cache_hits > 0, "repeated subspaces never hit"
            assert engine.stats.cache_invalid == 0

        _assert_matches(serial, cold, "cold")
        _assert_matches(serial, warm, "warm")

        everything = network.all_points()
        for query in queries:
            mask = skyline_mask(everything.values, list(query.subspace))
            expected = frozenset(int(i) for i in everything.ids[mask])
            for variant in variants:
                idx = queries.index(query)
                assert warm[variant][idx].result_ids == expected

    def test_cache_off_matches_cache_on(self, monkeypatch):
        network = _network(seed=23)
        queries = _queries(network)
        variants = list(Variant)

        monkeypatch.setenv("REPRO_SHM_CACHE", "0")
        with ParallelEngine(2, use_shm=shm_supported()) as engine:
            off = engine.run_queries(network, queries, variants)

        monkeypatch.setenv("REPRO_SHM_CACHE", "1")
        with ParallelEngine(2, use_shm=shm_supported()) as engine:
            engine.run_queries(network, queries, variants)
            on = engine.run_queries(network, queries, variants)

        _assert_matches(off, on, "on-vs-off")

    def test_snapshot_plane_falls_back_to_local_cache(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM_CACHE", "1")
        network = _network(seed=31)
        queries = _queries(network)
        serial = {
            v: [execute_query(network, q, v) for q in queries] for v in Variant
        }
        with ParallelEngine(2, use_shm=False) as engine:
            engine.run_queries(network, queries, list(Variant))
            warm = engine.run_queries(network, queries, list(Variant))
            assert engine.stats.cache_kinds == {"local"}
            assert engine.stats.cache_hits > 0
        _assert_matches(serial, warm, "snapshot")


@pytest.mark.skipif(
    not hasattr(__import__("os"), "sched_setaffinity"),
    reason="no sched_setaffinity on this platform",
)
class TestCpuPinning:
    def test_pinned_pool_matches_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_PIN_CPUS", "1")
        network = _network(seed=41)
        queries = _queries(network)[:2]
        serial = {
            v: [execute_query(network, q, v) for q in queries] for v in Variant
        }
        with ParallelEngine(2, use_shm=shm_supported()) as engine:
            parallel = engine.run_queries(network, queries, list(Variant))
            assert engine.stats.cpu_pinning is True
        _assert_matches(serial, parallel, "pinned")

    def test_pinning_off_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_PIN_CPUS", raising=False)
        with ParallelEngine(2, use_shm=False) as engine:
            assert engine.stats.cpu_pinning is False


@st.composite
def cache_cases(draw):
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    d = draw(st.integers(2, 4))
    topo = Topology.generate(n_peers=4, n_superpeers=2, degree=3.0, seed=seed)
    partitions = {}
    next_id = 0
    for peers in topo.peers_of.values():
        for pid in peers:
            n = draw(st.integers(2, 8))
            partitions[pid] = PointSet(
                rng.random((n, d)), np.arange(next_id, next_id + n)
            )
            next_id += n
    net = SuperPeerNetwork.from_partitions(topo, partitions)
    k = draw(st.integers(1, d))
    dims = draw(st.lists(st.integers(0, d - 1), min_size=k, max_size=k, unique=True))
    initiator = draw(st.sampled_from(sorted(topo.superpeer_ids)))
    # The same query twice: the second execution replays cached blocks.
    query = Query(subspace=tuple(sorted(dims)), initiator=initiator)
    return net, [query, query]


@given(cache_cases())
@settings(
    max_examples=4,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_cached_replay_is_indistinguishable_property(case):
    net, queries = case
    variants = list(Variant)
    previous = os.environ.get("REPRO_SHM_CACHE")
    os.environ["REPRO_SHM_CACHE"] = "1"
    try:
        serial = {v: [execute_query(net, q, v) for q in queries] for v in variants}
        with ParallelEngine(2, use_shm=shm_supported()) as engine:
            parallel = engine.run_queries(net, queries, variants)
    finally:
        if previous is None:
            os.environ.pop("REPRO_SHM_CACHE", None)
        else:
            os.environ["REPRO_SHM_CACHE"] = previous
    _assert_matches(serial, parallel, "property")
    everything = net.all_points()
    mask = skyline_mask(everything.values, list(queries[0].subspace))
    expected = frozenset(int(i) for i in everything.ids[mask])
    for variant in variants:
        for execution in parallel[variant]:
            assert execution.result_ids == expected
