"""Property-based serial-vs-parallel differential.

Randomized networks, workloads and variant mixes; every example runs
the workload serially and through a 2-worker pool and demands
byte-identical result sets plus equal work, message, volume and merged
counter accounting.  Wall-clock fields are exempt by design.

Examples are few and tiny: each one pays for a process-pool spin-up,
and the deterministic differential in ``test_differential.py`` already
covers the common shapes.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.dataset import PointSet
from repro.data.workload import Query
from repro.obs.metrics import MetricsRegistry
from repro.obs.runtime import install, uninstall
from repro.p2p.network import SuperPeerNetwork
from repro.p2p.topology import Topology
from repro.parallel import run_queries_parallel
from repro.skypeer.executor import execute_query
from repro.skypeer.variants import Variant


@st.composite
def differential_cases(draw):
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    d = draw(st.integers(2, 4))
    n_superpeers = draw(st.integers(1, 3))
    peers_per_sp = draw(st.integers(1, 3))
    points_per_peer = draw(st.integers(1, 8))
    topo = Topology.generate(
        n_peers=n_superpeers * peers_per_sp,
        n_superpeers=n_superpeers,
        degree=3.0,
        seed=seed,
    )
    partitions = {}
    next_id = 0
    for peers in topo.peers_of.values():
        for pid in peers:
            partitions[pid] = PointSet(
                rng.random((points_per_peer, d)),
                np.arange(next_id, next_id + points_per_peer),
            )
            next_id += points_per_peer
    net = SuperPeerNetwork.from_partitions(topo, partitions)
    queries = []
    for _ in range(draw(st.integers(1, 2))):
        k = draw(st.integers(1, d))
        dims = draw(st.lists(st.integers(0, d - 1), min_size=k, max_size=k, unique=True))
        initiator = draw(st.sampled_from(sorted(topo.superpeer_ids)))
        queries.append(Query(subspace=tuple(sorted(dims)), initiator=initiator))
    variants = draw(
        st.lists(st.sampled_from(list(Variant)), min_size=1, max_size=2, unique=True)
    )
    return net, queries, variants


@given(differential_cases())
@settings(
    max_examples=4,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_parallel_run_is_indistinguishable_from_serial(case):
    net, queries, variants = case

    serial_reg = MetricsRegistry()
    install(None, serial_reg)
    try:
        serial = {v: [execute_query(net, q, v) for q in queries] for v in variants}
    finally:
        uninstall()

    parallel_reg = MetricsRegistry()
    install(None, parallel_reg)
    try:
        parallel = run_queries_parallel(net, queries, variants, workers=2)
    finally:
        uninstall()

    for variant in variants:
        for s, p in zip(serial[variant], parallel[variant]):
            assert s.result_ids == p.result_ids
            assert np.array_equal(s.result.points.values, p.result.points.values)
            assert s.comparisons == p.comparisons
            assert s.message_count == p.message_count
            assert s.volume_bytes == p.volume_bytes
            assert s.critical_path_examined == p.critical_path_examined

    for name in {n for n, _, _ in serial_reg.counters()}:
        assert parallel_reg.total(name) == serial_reg.total(name), name
