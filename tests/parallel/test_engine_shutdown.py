"""Teardown hardening: shutdown is idempotent, thread-safe and leak-free.

The serving gateway drives one shared engine from several executor
threads and closes it while work may still be in flight; these tests
pin down the contract that makes that safe: a second ``close()`` or
``shutdown_engines()`` never raises, a close racing concurrent callers
runs its teardown exactly once, a publish racing a close either lands
before the drain or raises (never leaks a segment afterwards), and no
``/dev/shm/repro-shm-*`` segment survives any of it.
"""

from __future__ import annotations

import glob
import os
import threading

import numpy as np
import pytest

from repro.core.dataset import PointSet
from repro.data.workload import Query
from repro.p2p.network import SuperPeerNetwork
from repro.p2p.topology import Topology
from repro.parallel import ParallelEngine, get_engine, shutdown_engines
from repro.parallel.engine import _ENGINES
from repro.parallel.shm import shm_supported
from repro.skypeer.variants import Variant


def _network(seed: int = 13, d: int = 4) -> SuperPeerNetwork:
    rng = np.random.default_rng(seed)
    topo = Topology.generate(n_peers=9, n_superpeers=3, degree=3.0, seed=seed)
    partitions = {}
    next_id = 0
    for peers in topo.peers_of.values():
        for pid in peers:
            partitions[pid] = PointSet(
                rng.random((12, d)), np.arange(next_id, next_id + 12)
            )
            next_id += 12
    return SuperPeerNetwork.from_partitions(topo, partitions)


def _segments() -> list[str]:
    return glob.glob("/dev/shm/repro-shm-*")


class TestIdempotentClose:
    def test_double_close_is_silent(self):
        engine = ParallelEngine(2)
        engine.close()
        engine.close()
        assert engine.closed

    def test_double_shutdown_engines_is_silent(self):
        get_engine(2)
        shutdown_engines()
        shutdown_engines()  # registry already empty: no-op, no raise
        assert _ENGINES == {}

    def test_close_after_use_unlinks_segments(self):
        before = set(_segments())
        network = _network()
        engine = ParallelEngine(2)
        query = Query(subspace=(0, 1), initiator=network.topology.superpeer_ids[0])
        engine.run_queries(network, [query], [Variant.FTPM])
        if shm_supported():
            assert engine.published_segments()
        engine.close()
        engine.close()
        assert engine.published_segments() == []
        assert set(_segments()) <= before

    def test_run_queries_after_close_raises_cleanly(self):
        network = _network()
        engine = ParallelEngine(2)
        engine.close()
        query = Query(subspace=(0, 1), initiator=network.topology.superpeer_ids[0])
        with pytest.raises(RuntimeError, match="closed"):
            engine.run_queries(network, [query], [Variant.FTPM])


class TestConcurrentTeardown:
    def test_concurrent_close_runs_teardown_once(self):
        engine = ParallelEngine(2)
        errors: list[BaseException] = []
        barrier = threading.Barrier(8)

        def close():
            try:
                barrier.wait(timeout=10.0)
                engine.close()
            except BaseException as exc:  # noqa: BLE001 - collect everything
                errors.append(exc)

        threads = [threading.Thread(target=close) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        assert errors == []
        assert engine.closed

    def test_publish_racing_close_never_leaks(self):
        """Threads publishing while another closes: every outcome is clean.

        A publish either lands before the drain (its segment is
        withdrawn by close) or observes the closed flag and raises;
        either way no ``repro-shm`` segment survives.
        """
        before = set(_segments())
        for attempt in range(3):
            network = _network(seed=50 + attempt)
            engine = ParallelEngine(2)
            unexpected: list[BaseException] = []
            barrier = threading.Barrier(3)

            def publish():
                try:
                    barrier.wait(timeout=10.0)
                    engine._publish(network, for_query=True)
                except RuntimeError as exc:
                    if "closed" not in str(exc):
                        unexpected.append(exc)
                except BaseException as exc:  # noqa: BLE001
                    unexpected.append(exc)

            def close():
                try:
                    barrier.wait(timeout=10.0)
                    engine.close()
                except BaseException as exc:  # noqa: BLE001
                    unexpected.append(exc)

            threads = [
                threading.Thread(target=publish),
                threading.Thread(target=publish),
                threading.Thread(target=close),
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30.0)
            engine.close()  # close may have lost the race to a publish
            assert unexpected == []
            assert engine.published_segments() == []
        assert set(_segments()) <= before

    def test_shutdown_with_inflight_queries_completes_them(self):
        """close() waits for the pool: in-flight futures finish, then drain."""
        before = set(_segments())
        network = _network()
        engine = ParallelEngine(2)
        queries = [
            Query(subspace=(0, 1), initiator=network.topology.superpeer_ids[0]),
            Query(subspace=(1, 3), initiator=network.topology.superpeer_ids[0]),
        ]
        done = threading.Event()
        results: list = []
        errors: list[BaseException] = []

        def work():
            try:
                results.append(
                    engine.run_queries(network, queries, [Variant.FTPM, Variant.RTPM])
                )
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)
            finally:
                done.set()

        worker = threading.Thread(target=work)
        worker.start()
        done.wait(timeout=60.0)  # ProcessPoolExecutor waits for running work
        engine.close()
        worker.join(timeout=60.0)
        assert errors == []
        assert len(results) == 1
        assert engine.published_segments() == []
        assert set(_segments()) <= before


class TestSharedRegistry:
    def test_get_engine_after_shutdown_builds_a_fresh_one(self):
        first = get_engine(2)
        shutdown_engines()
        assert first.closed
        second = get_engine(2)
        try:
            assert second is not first
            assert not second.closed
        finally:
            shutdown_engines()

    def test_shutdown_closes_all_even_when_one_raises(self, monkeypatch):
        a = get_engine(2)
        # register a booby-trapped second engine under a fake key
        b = ParallelEngine(2)
        calls: list[str] = []
        original = ParallelEngine.close

        def exploding_close(self):
            if self is a and not calls:
                calls.append("boom")
                raise OSError("injected close failure")
            return original(self)

        monkeypatch.setattr(ParallelEngine, "close", exploding_close)
        _ENGINES["fake-key"] = b
        with pytest.raises(OSError, match="injected"):
            shutdown_engines()
        # the failing engine did not strand the other one
        assert b.closed
        assert _ENGINES == {}
        monkeypatch.undo()
        a.close()


class TestEpochGateRaces:
    """Updates racing fan-outs: old epoch or new, never a torn mix."""

    @staticmethod
    def _snapshot(store) -> tuple:
        return (
            store.points.ids.tobytes(),
            store.points.values.tobytes(),
            store.f.tobytes(),
        )

    @pytest.mark.skipif(not shm_supported(), reason="needs POSIX shared memory")
    def test_apply_update_racing_run_queries_never_tears(self):
        from repro.p2p.workload import fresh_points
        from repro.skypeer.executor import execute_query

        network = _network(seed=31)
        query = Query(subspace=(0, 1, 2), initiator=network.topology.superpeer_ids[0])
        with ParallelEngine(2, use_shm=True) as engine:
            engine.run_queries(network, [query], [Variant.FTPM])
            # Every answer a reader may legally observe: the pre-update
            # skyline plus the one after each applied update.
            legal = {self._snapshot(execute_query(network, query, Variant.FTPM).result)}
            observed: list[tuple] = []
            errors: list[Exception] = []
            lock = threading.Lock()

            def reader():
                for _ in range(8):
                    try:
                        runs = engine.run_queries(network, [query], [Variant.FTPM])
                        snap = self._snapshot(runs[Variant.FTPM][0].result)
                        with lock:
                            observed.append(snap)
                    except Exception as exc:  # pragma: no cover - fail loudly
                        errors.append(exc)
                        return

            threads = [threading.Thread(target=reader) for _ in range(3)]
            for thread in threads:
                thread.start()
            peer_id = sorted(network.peers)[0]
            for i in range(4):
                engine.apply_update(
                    network, "insert", peer_id=peer_id,
                    points=fresh_points(network, 2, seed=50 + i),
                )
                # The write gate has drained: the network is quiescent,
                # so a serial read here is race-free.
                legal.add(
                    self._snapshot(execute_query(network, query, Variant.FTPM).result)
                )
            for thread in threads:
                thread.join()
            assert not errors
            assert observed
            torn = [snap for snap in observed if snap not in legal]
            assert torn == [], f"{len(torn)} torn responses"
            assert engine.stats.updates_applied == 4
        assert [s for s in _segments() if f"{os.getpid():x}" in s] == []

    def test_apply_update_after_close_raises_cleanly(self):
        from repro.p2p.workload import fresh_points

        network = _network(seed=32)
        engine = ParallelEngine(2)
        engine.close()
        with pytest.raises(RuntimeError, match="closed"):
            engine.apply_update(
                network, "insert", peer_id=sorted(network.peers)[0],
                points=fresh_points(network, 1, seed=1),
            )

    @pytest.mark.skipif(not shm_supported(), reason="needs POSIX shared memory")
    def test_apply_update_racing_close_applies_or_raises(self):
        from repro.p2p.workload import fresh_points

        network = _network(seed=33)
        query = Query(subspace=(0, 1), initiator=network.topology.superpeer_ids[0])
        engine = ParallelEngine(2, use_shm=True)
        engine.run_queries(network, [query], [Variant.FTPM])
        outcomes: list[str] = []

        def updater():
            try:
                engine.apply_update(
                    network, "insert", peer_id=sorted(network.peers)[0],
                    points=fresh_points(network, 1, seed=2),
                )
                outcomes.append("applied")
            except RuntimeError:
                outcomes.append("refused")

        thread = threading.Thread(target=updater)
        thread.start()
        engine.close()
        thread.join()
        assert outcomes and outcomes[0] in ("applied", "refused")
        assert engine.closed
        assert [s for s in _segments() if f"{os.getpid():x}" in s] == []
