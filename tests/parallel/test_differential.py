"""Parallel and serial execution must be observably identical.

The acceptance bar of the parallel engine: per-run result sets, work
counts, message/volume accounting and merged metric counter totals all
match a serial run exactly — only wall-clock fields may differ.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.harness import VariantStats, run_queries
from repro.data.workload import Query
from repro.obs.metrics import MetricsRegistry
from repro.obs.runtime import install, uninstall
from repro.p2p.network import SuperPeerNetwork
from repro.parallel import preprocess_network_parallel, run_queries_parallel
from repro.skypeer.executor import execute_query
from repro.skypeer.variants import Variant

DETERMINISTIC_RUN_FIELDS = (
    "volume_bytes",
    "message_count",
    "comparisons",
    "initial_threshold",
    "local_result_points",
    "critical_path_examined",
)

VARIANTS = [Variant.FTPM, Variant.RTFM]


@pytest.fixture(scope="module")
def network() -> SuperPeerNetwork:
    return SuperPeerNetwork.build(
        n_peers=24, points_per_peer=12, dimensionality=4, seed=5
    )


@pytest.fixture(scope="module")
def queries(network) -> list[Query]:
    sp = network.topology.superpeer_ids
    return [
        Query(subspace=(0, 2), initiator=sp[0]),
        Query(subspace=(1, 3), initiator=sp[-1]),
        Query(subspace=(0, 1, 2, 3), initiator=sp[0]),  # full space
    ]


@pytest.fixture(scope="module")
def differential(network, queries):
    """One pool spin shared by the assertions below (pools are slow)."""
    serial = {
        v: [execute_query(network, q, v) for q in queries] for v in VARIANTS
    }
    reg = MetricsRegistry()
    install(None, reg)
    try:
        parallel = run_queries_parallel(network, queries, VARIANTS, workers=2)
    finally:
        uninstall()
    return serial, parallel, reg


def test_result_sets_identical(differential):
    serial, parallel, _ = differential
    for variant, runs in serial.items():
        for s, p in zip(runs, parallel[variant]):
            assert s.result_ids == p.result_ids
            assert np.array_equal(s.result.points.values, p.result.points.values)
            assert np.array_equal(s.result.f, p.result.f)


def test_work_and_volume_accounting_identical(differential):
    serial, parallel, _ = differential
    for variant, runs in serial.items():
        for s, p in zip(runs, parallel[variant]):
            for field in DETERMINISTIC_RUN_FIELDS:
                assert getattr(s, field) == getattr(p, field), (
                    variant,
                    s.query,
                    field,
                )


def test_merged_counter_totals_match_serial(network, queries, differential):
    _, _, parallel_reg = differential
    serial_reg = MetricsRegistry()
    install(None, serial_reg)
    try:
        for v in VARIANTS:
            for q in queries:
                execute_query(network, q, v)
    finally:
        uninstall()
    serial_names = {n for n, _, _ in serial_reg.counters()}
    assert serial_names  # the executor does emit counters
    for name in serial_names:
        assert parallel_reg.total(name) == serial_reg.total(name), name


def test_run_queries_stats_identical(network, queries):
    serial = run_queries(network, queries, VARIANTS, workers=1)
    parallel = run_queries(network, queries, VARIANTS, workers=2)
    for variant in VARIANTS:
        s, p = serial[variant], parallel[variant]
        assert isinstance(s, VariantStats)
        assert s.queries == p.queries
        assert s.mean_volume_kb == p.mean_volume_kb
        assert s.mean_messages == p.mean_messages
        assert s.mean_result_size == p.mean_result_size
        assert s.mean_comparisons == p.mean_comparisons
        assert s.mean_critical_path_examined == p.mean_critical_path_examined


class TestPreprocessing:
    def test_parallel_preprocess_builds_identical_stores(self):
        kwargs = dict(n_peers=24, points_per_peer=12, dimensionality=4, seed=5)
        serial = SuperPeerNetwork.build(**kwargs)
        parallel = SuperPeerNetwork.build(**kwargs, workers=2)
        for sp_id in serial.topology.superpeer_ids:
            a = serial.superpeers[sp_id].store
            b = parallel.superpeers[sp_id].store
            assert np.array_equal(a.points.values, b.points.values)
            assert np.array_equal(a.points.ids, b.points.ids)
            assert np.array_equal(a.f, b.f)

    def test_parallel_preprocess_report_identical(self):
        kwargs = dict(n_peers=24, points_per_peer=12, dimensionality=4, seed=5)
        serial = SuperPeerNetwork.build(**kwargs)
        parallel = SuperPeerNetwork.build(**kwargs, workers=2)
        r_s, r_p = serial.preprocessing, parallel.preprocessing
        assert r_s.total_points == r_p.total_points
        assert r_s.peer_skyline_points == r_p.peer_skyline_points
        assert r_s.superpeer_store_points == r_p.superpeer_store_points
        assert r_s.upload_bytes == r_p.upload_bytes
        assert r_s.sel_p == r_p.sel_p
        assert r_s.sel_sp == r_p.sel_sp

    def test_preprocess_tasks_cover_topology_order(self, network):
        results = preprocess_network_parallel(network, workers=2)
        assert [r.superpeer_id for r in results] == list(
            network.topology.superpeer_ids
        )
        for result in results:
            attached = network.topology.peers_of[result.superpeer_id]
            assert [pid for pid, _, _ in result.peer_results] == list(attached)
