"""Shared-memory data plane: roundtrip fidelity and segment lifecycle.

The acceptance bar: attached networks are byte-identical views of the
published stores, and no ``/dev/shm`` entry survives an engine close,
a handle close, or interpreter exit.
"""

from __future__ import annotations

import os
import subprocess
import sys

import numpy as np
import pytest

from repro.p2p.network import SuperPeerNetwork
from repro.parallel import ParallelEngine
from repro.parallel.shm import (
    SHM_ENV,
    attach_network,
    publish_network,
    shm_enabled,
    shm_supported,
)

pytestmark = pytest.mark.skipif(
    not shm_supported(), reason="platform has no POSIX shared memory"
)

REPO_SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


def _segment_exists(name: str) -> bool:
    return os.path.exists(os.path.join("/dev/shm", name))


@pytest.fixture(scope="module")
def network() -> SuperPeerNetwork:
    return SuperPeerNetwork.build(
        n_peers=12, points_per_peer=30, dimensionality=5, seed=3
    )


class TestRoundtrip:
    def test_attached_stores_are_byte_identical(self, network):
        with publish_network(network) as shared:
            with attach_network(shared.manifest) as attached:
                assert attached.dimensionality == network.dimensionality
                assert attached.index_kind == network.index_kind
                assert attached.epoch == network.epoch
                assert attached.topology.adjacency == network.topology.adjacency
                for sp_id in network.topology.superpeer_ids:
                    mine = network.superpeers[sp_id].store
                    theirs = attached.superpeers[sp_id].store
                    assert np.array_equal(mine.points.values, theirs.points.values)
                    assert np.array_equal(mine.points.ids, theirs.points.ids)
                    assert np.array_equal(mine.f, theirs.f)

    def test_attached_partitions_match(self, network):
        with publish_network(network) as shared:
            with attach_network(shared.manifest) as attached:
                for peer_id, peer in network.peers.items():
                    assert np.array_equal(
                        peer.data.values, attached.peers[peer_id].data.values
                    )
                    assert np.array_equal(
                        peer.data.ids, attached.peers[peer_id].data.ids
                    )

    def test_attached_views_are_read_only(self, network):
        with publish_network(network) as shared:
            with attach_network(shared.manifest) as attached:
                store = attached.superpeers[network.topology.superpeer_ids[0]].store
                with pytest.raises(ValueError):
                    store.points.values[0, 0] = 42.0
                with pytest.raises(ValueError):
                    store.f[0] = -1.0

    def test_attached_network_answers_queries_identically(self, network):
        from repro.data.workload import Query
        from repro.skypeer.executor import execute_query
        from repro.skypeer.variants import Variant

        query = Query(subspace=(0, 2, 4), initiator=network.topology.superpeer_ids[0])
        reference = execute_query(network, query, Variant.FTPM)
        with publish_network(network) as shared:
            with attach_network(shared.manifest) as attached:
                run = execute_query(attached, query, Variant.FTPM)
        assert run.result_ids == reference.result_ids
        assert run.volume_bytes == reference.volume_bytes
        assert run.comparisons == reference.comparisons

    def test_unpreprocessed_network_publishes_partitions_only(self):
        raw = SuperPeerNetwork.build(
            n_peers=12, points_per_peer=30, dimensionality=5, seed=3, preprocess=False
        )
        with publish_network(raw) as shared:
            assert shared.manifest["stores"] == {}
            with attach_network(shared.manifest) as attached:
                assert all(sp.store is None for sp in attached.superpeers.values())
                result = attached.compute_superpeer_preprocess(
                    attached.topology.superpeer_ids[0]
                )
                assert result.peer_results


class TestLifecycle:
    def test_close_unlinks_segment(self, network):
        shared = publish_network(network)
        name = shared.name
        assert _segment_exists(name)
        shared.close()
        assert not _segment_exists(name)
        shared.close()  # idempotent

    def test_context_manager_unlinks(self, network):
        with publish_network(network) as shared:
            name = shared.name
            assert _segment_exists(name)
        assert not _segment_exists(name)

    def test_engine_close_unlinks_publications(self, network):
        from repro.data.workload import Query

        engine = ParallelEngine(workers=2, use_shm=True)
        try:
            query = Query(subspace=(0, 1), initiator=network.topology.superpeer_ids[0])
            engine.run_queries(network, [query], ["FTPM"])
            segments = engine.published_segments()
            assert segments and all(_segment_exists(s) for s in segments)
        finally:
            engine.close()
        assert all(not _segment_exists(s) for s in segments)

    def test_interpreter_exit_unlinks(self, tmp_path):
        """An abandoned handle must not leak past interpreter exit."""
        script = (
            "import sys\n"
            "from repro.p2p.network import SuperPeerNetwork\n"
            "from repro.parallel.shm import publish_network\n"
            "net = SuperPeerNetwork.build(n_peers=6, points_per_peer=10,"
            " dimensionality=3, seed=0)\n"
            "shared = publish_network(net)\n"
            "print(shared.name)\n"
            "sys.stdout.flush()\n"
            # exit WITHOUT closing: the atexit hook must unlink
        )
        env = dict(os.environ, PYTHONPATH=REPO_SRC)
        out = subprocess.run(
            [sys.executable, "-c", script], env=env, capture_output=True, text=True
        )
        assert out.returncode == 0, out.stderr
        name = out.stdout.strip().splitlines()[-1]
        assert name.startswith("repro-shm-")
        assert not _segment_exists(name)

    def test_engine_interpreter_exit_unlinks(self):
        """Engine publications unlink at exit even without close()."""
        script = (
            "import sys\n"
            "from repro.data.workload import Query\n"
            "from repro.p2p.network import SuperPeerNetwork\n"
            "from repro.parallel import ParallelEngine\n"
            "net = SuperPeerNetwork.build(n_peers=6, points_per_peer=10,"
            " dimensionality=3, seed=0)\n"
            "engine = ParallelEngine(workers=2, use_shm=True)\n"
            "engine.run_queries(net, [Query(subspace=(0, 1),"
            " initiator=net.topology.superpeer_ids[0])], ['FTPM'])\n"
            "print('\\n'.join(engine.published_segments()))\n"
            "sys.stdout.flush()\n"
            # no engine.close(): the atexit hook must run it
        )
        env = dict(os.environ, PYTHONPATH=REPO_SRC)
        out = subprocess.run(
            [sys.executable, "-c", script], env=env, capture_output=True, text=True
        )
        assert out.returncode == 0, out.stderr
        names = [n for n in out.stdout.strip().splitlines() if n.startswith("repro-shm-")]
        assert names
        for name in names:
            assert not _segment_exists(name)

    def test_no_leaked_segments_after_suite(self):
        """Belt and braces: nothing from this process lingers in /dev/shm."""
        from repro.parallel import shutdown_engines

        # Shared engines cache publications until closed by design —
        # drain them first so this check is independent of which other
        # test modules ran (and in what order) before this one.
        shutdown_engines()
        mine = f"repro-shm-{os.getpid():x}-"
        leaked = [n for n in os.listdir("/dev/shm") if n.startswith(mine)]
        assert leaked == []


class TestToggle:
    def test_env_disables(self, monkeypatch):
        monkeypatch.setenv(SHM_ENV, "0")
        assert shm_enabled() is False
        monkeypatch.setenv(SHM_ENV, "off")
        assert shm_enabled() is False

    def test_env_forces(self, monkeypatch):
        monkeypatch.setenv(SHM_ENV, "1")
        assert shm_enabled() is True

    def test_default_is_autodetect(self, monkeypatch):
        monkeypatch.delenv(SHM_ENV, raising=False)
        assert shm_enabled() is shm_supported()

    def test_snapshot_fallback_gives_identical_results(self, network, monkeypatch):
        from repro.data.workload import Query
        from repro.skypeer.executor import execute_query
        from repro.skypeer.variants import Variant

        queries = [
            Query(subspace=(0, 2), initiator=network.topology.superpeer_ids[0]),
            Query(subspace=(1, 3), initiator=network.topology.superpeer_ids[-1]),
        ]
        serial = [execute_query(network, q, Variant.RTFM) for q in queries]
        with ParallelEngine(workers=2, use_shm=False) as engine:
            runs = engine.run_queries(network, queries, [Variant.RTFM])
            assert engine.stats.publish_modes == ["snapshot"]
            assert engine.published_segments() == []
        for s, p in zip(serial, runs[Variant.RTFM]):
            assert s.result_ids == p.result_ids
            assert s.volume_bytes == p.volume_bytes
            assert s.comparisons == p.comparisons
