"""Intra-query partitioned scans: split, merge, engine fan-out, knobs.

Every partitioner × substrate combination must reproduce the serial
sorted scan byte-for-byte; the engine's fan-out must account the work
as intra-query subtasks, not whole-query tasks.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.dataset import PointSet
from repro.core.local_skyline import local_subspace_skyline
from repro.core.store import SortedByF
from repro.data.workload import Query
from repro.p2p.network import SuperPeerNetwork
from repro.p2p.topology import Topology
from repro.parallel.engine import EngineStats, ParallelEngine
from repro.parallel.partition import (
    PARTITION_ENV,
    PARTITION_PARTS_ENV,
    PARTITIONERS,
    partition_positions,
    partition_skew,
    partitioned_subspace_skyline,
    resolve_partition_parts,
    resolve_partitioner,
    scan_partition,
)
from repro.skypeer.executor import execute_query, make_local_compute
from repro.skypeer.variants import Variant

SPLITTERS = ("range", "grid", "angular")


def assert_identical(reference, other):
    """Byte-identity of two SkylineComputations (timings exempt)."""
    assert other.threshold == reference.threshold
    assert np.array_equal(other.positions, reference.positions)
    assert np.array_equal(other.result.points.values, reference.result.points.values)
    assert np.array_equal(other.result.points.ids, reference.result.points.ids)
    assert np.array_equal(other.result.f, reference.result.f)


def make_store(rng, n=240, d=4):
    return SortedByF.from_points(PointSet(rng.random((n, d))))


class TestPartitionPositions:
    @pytest.mark.parametrize("kind", SPLITTERS)
    @pytest.mark.parametrize("parts", [1, 3, 4, 7])
    def test_cover_disjoint_ascending(self, rng, kind, parts):
        proj = rng.random((97, 3))
        slices = partition_positions(kind, proj, parts)
        assert all(s.size for s in slices)
        assert all(np.array_equal(s, np.sort(s)) for s in slices)
        union = np.concatenate(slices)
        assert union.size == len(np.unique(union)) == 97
        assert len(slices) <= max(1, parts)

    @pytest.mark.parametrize("kind", SPLITTERS)
    def test_more_parts_than_points(self, rng, kind):
        proj = rng.random((3, 2))
        slices = partition_positions(kind, proj, 8)
        assert np.array_equal(np.sort(np.concatenate(slices)), np.arange(3))

    def test_empty_projection(self):
        assert partition_positions("grid", np.zeros((0, 2)), 4) == []

    def test_one_dimensional_angular_falls_back_to_range(self, rng):
        proj = rng.random((40, 1))
        angular = partition_positions("angular", proj, 4)
        ranged = partition_positions("range", proj, 4)
        assert all(np.array_equal(a, r) for a, r in zip(angular, ranged))

    def test_unknown_kind_raises(self, rng):
        with pytest.raises(ValueError, match="unknown partitioner"):
            partition_positions("hilbert", rng.random((10, 2)), 2)

    def test_skew_summary(self, rng):
        slices = partition_positions("range", rng.random((100, 2)), 4)
        skew = partition_skew(slices)
        assert skew["parts"] == 4
        assert skew["max_size"] == 25
        assert skew["skew"] == 1.0
        assert partition_skew([])["skew"] == 1.0


class TestResolvers:
    def test_partitioner_default_is_none(self, monkeypatch):
        monkeypatch.delenv(PARTITION_ENV, raising=False)
        assert resolve_partitioner() == "none"

    def test_partitioner_env_var(self, monkeypatch):
        monkeypatch.setenv(PARTITION_ENV, "angular")
        assert resolve_partitioner() == "angular"

    def test_partitioner_argument_wins(self, monkeypatch):
        monkeypatch.setenv(PARTITION_ENV, "angular")
        assert resolve_partitioner("grid") == "grid"

    def test_unknown_partitioner_raises(self):
        with pytest.raises(ValueError, match="unknown partitioner"):
            resolve_partitioner("hilbert")
        assert "none" in PARTITIONERS

    def test_error_message_lists_valid_names(self):
        # Satellite: a typo in REPRO_PARTITION must name every valid
        # partitioner in the error.
        with pytest.raises(ValueError) as exc:
            resolve_partitioner("hilbert")
        message = str(exc.value)
        for name in PARTITIONERS:
            assert name in message

    def test_parts_env_and_default(self, monkeypatch):
        monkeypatch.delenv(PARTITION_PARTS_ENV, raising=False)
        assert resolve_partition_parts(default=3) == 3
        monkeypatch.setenv(PARTITION_PARTS_ENV, "6")
        assert resolve_partition_parts() == 6
        assert resolve_partition_parts(2) == 2

    def test_nonpositive_parts_raise(self):
        with pytest.raises(ValueError, match="positive"):
            resolve_partition_parts(0)


class TestPartitionedScanIdentity:
    @pytest.mark.parametrize("partitioner", SPLITTERS)
    @pytest.mark.parametrize("substrate", ["sorted", "bbs", "salsa"])
    def test_matches_serial(self, rng, partitioner, substrate):
        store = make_store(rng)
        subspace = (0, 1, 2)
        serial = local_subspace_skyline(store, subspace)
        split = partitioned_subspace_skyline(
            store, subspace, partitioner=partitioner, parts=4, substrate=substrate
        )
        assert_identical(serial, split)

    @pytest.mark.parametrize("partitioner", SPLITTERS)
    def test_strict_matches_serial(self, rng, partitioner):
        store = make_store(rng, n=150)
        serial = local_subspace_skyline(store, (1, 3), strict=True)
        split = partitioned_subspace_skyline(
            store, (1, 3), strict=True, partitioner=partitioner, parts=3
        )
        assert_identical(serial, split)

    def test_finite_threshold_prefix_only(self, rng):
        store = make_store(rng)
        for threshold in (0.8, 0.4):
            serial = local_subspace_skyline(store, (0, 2), initial_threshold=threshold)
            split = partitioned_subspace_skyline(
                store, (0, 2), initial_threshold=threshold,
                partitioner="grid", parts=4,
            )
            assert_identical(serial, split)

    def test_duplicated_rows(self, rng):
        base = rng.integers(0, 4, size=(70, 3)).astype(float)
        store = SortedByF.from_points(PointSet(np.vstack([base, base[:25]])))
        for partitioner in SPLITTERS:
            assert_identical(
                local_subspace_skyline(store, (0, 1, 2)),
                partitioned_subspace_skyline(
                    store, (0, 1, 2), partitioner=partitioner, parts=4
                ),
            )

    def test_single_slice_scan_is_exact(self, rng):
        # A slice scan must equal the serial scan restricted to the
        # slice — with the whole store as one slice, it IS the serial
        # scan.
        store = make_store(rng, n=100)
        serial = local_subspace_skyline(store, (0, 1))
        scan = scan_partition(store, (0, 1), np.arange(len(store)))
        assert_identical(serial, scan)

    def test_comparisons_stay_honest(self, rng):
        store = make_store(rng)
        split = partitioned_subspace_skyline(store, (0, 1, 2), partitioner="grid")
        assert split.comparisons > 0
        assert split.examined <= len(store)
        assert split.input_size == len(store)


def single_store_network(points):
    """One super-peer whose store holds exactly ``points`` (no pre-filter)."""
    topology = Topology.generate(n_peers=1, n_superpeers=1, seed=0)
    network = SuperPeerNetwork.from_partitions(
        topology, {0: points}, preprocess=False
    )
    sp = next(iter(network.superpeers))
    network.superpeers[sp].store = SortedByF.from_points(points)
    return network, sp


class TestEngineFanOut:
    @pytest.fixture(scope="class")
    def engine(self):
        with ParallelEngine(2, use_shm=False, mp_start="fork") as engine:
            yield engine

    def test_pooled_scan_matches_serial_and_splits_stats(self, rng, engine):
        points = PointSet(rng.random((500, 4)))
        network, sp = single_store_network(points)
        store = network.store_of(sp)
        subspace = (0, 1, 2, 3)
        serial = local_subspace_skyline(store, subspace)

        before = engine.stats.as_dict()
        pooled = engine.run_partitioned_scan(
            network, sp, subspace, partitioner="grid", parts=4
        )
        assert_identical(serial, pooled)

        after = engine.stats.as_dict()
        assert after["intra_query_scans"] == before["intra_query_scans"] + 1
        assert after["intra_query_subtasks"] > before["intra_query_subtasks"]
        # Whole-query task accounting must not inflate.
        assert after["tasks"] == before["tasks"]

        # A repeat replays the per-slice block cache and stays identical.
        again = engine.run_partitioned_scan(
            network, sp, subspace, partitioner="grid", parts=4
        )
        assert_identical(serial, again)

    @pytest.mark.parametrize("substrate", ["bbs", "salsa"])
    def test_substrate_rides_through_the_pool(self, rng, engine, substrate):
        points = PointSet(rng.random((300, 3)))
        network, sp = single_store_network(points)
        serial = local_subspace_skyline(network.store_of(sp), (0, 1, 2))
        pooled = engine.run_partitioned_scan(
            network, sp, (0, 1, 2),
            partitioner="angular", parts=3, substrate=substrate,
        )
        assert_identical(serial, pooled)


class TestEngineStatsSplit:
    def test_new_fields_default_to_zero(self):
        stats = EngineStats(workers=2, start_method="fork").as_dict()
        for field in (
            "intra_query_scans",
            "intra_query_subtasks",
            "serve_queries",
            "serve_intra_query_subtasks",
        ):
            assert stats[field] == 0


class TestExecutorKnobs:
    def test_make_local_compute_partitioned(self, small_network):
        sp = next(iter(small_network.superpeers))
        store = small_network.store_of(sp)
        default = make_local_compute(small_network)
        gridded = make_local_compute(small_network, partitioner="grid", partition_parts=3)
        assert_identical(
            default(sp, (0, 1, 2), float("inf")),
            gridded(sp, (0, 1, 2), float("inf")),
        )

    def test_execute_query_knobs_preserve_results(self, small_network):
        query = Query(subspace=(0, 2, 4), initiator=next(iter(small_network.superpeers)))
        baseline = execute_query(small_network, query, Variant.FTPM)
        for kwargs in (
            {"scan_substrate": "bbs"},
            {"partitioner": "angular", "partition_parts": 3},
            {"scan_substrate": "bbs", "partitioner": "grid", "partition_parts": 2},
        ):
            run = execute_query(small_network, query, Variant.FTPM, **kwargs)
            assert run.result_ids == baseline.result_ids
            assert np.array_equal(
                run.result.points.values, baseline.result.points.values
            )

    def test_naive_ignores_kernel_knobs(self, small_network):
        query = Query(subspace=(1, 3), initiator=next(iter(small_network.superpeers)))
        baseline = execute_query(small_network, query, Variant.NAIVE)
        run = execute_query(
            small_network, query, Variant.NAIVE,
            scan_substrate="bbs", partitioner="grid",
        )
        assert run.result_ids == baseline.result_ids
        assert run.comparisons == baseline.comparisons


# Kernel configurations the property sweeps: each alternative substrate
# alone, each partitioner on the sorted substrate, and composed cases —
# including SaLSa under every partitioner (its per-slice stop point must
# survive the cross-slice merge).
KERNEL_CONFIGS = (
    {"scan_substrate": "bbs"},
    {"scan_substrate": "salsa"},
    {"partitioner": "range", "partition_parts": 3},
    {"partitioner": "grid", "partition_parts": 3},
    {"partitioner": "angular", "partition_parts": 3},
    {"scan_substrate": "bbs", "partitioner": "angular", "partition_parts": 2},
    {"scan_substrate": "salsa", "partitioner": "range", "partition_parts": 3},
    {"scan_substrate": "salsa", "partitioner": "grid", "partition_parts": 3},
    {"scan_substrate": "salsa", "partitioner": "angular", "partition_parts": 2},
)


@st.composite
def partition_cases(draw):
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    d = draw(st.integers(2, 4))
    n_superpeers = draw(st.integers(1, 2))
    peers_per_sp = draw(st.integers(1, 2))
    points_per_peer = draw(st.integers(2, 10))
    topology = Topology.generate(
        n_peers=n_superpeers * peers_per_sp,
        n_superpeers=n_superpeers,
        degree=3.0,
        seed=seed,
    )
    partitions = {}
    next_id = 0
    for peers in topology.peers_of.values():
        for pid in peers:
            partitions[pid] = PointSet(
                rng.random((points_per_peer, d)),
                np.arange(next_id, next_id + points_per_peer),
            )
            next_id += points_per_peer
    network = SuperPeerNetwork.from_partitions(topology, partitions)
    k = draw(st.integers(1, d))
    dims = draw(st.lists(st.integers(0, d - 1), min_size=k, max_size=k, unique=True))
    initiator = draw(st.sampled_from(sorted(topology.superpeer_ids)))
    return network, Query(subspace=tuple(sorted(dims)), initiator=initiator)


@given(partition_cases())
@settings(
    max_examples=4,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_kernels_are_indistinguishable_across_all_variants(case):
    """Satellite: every kernel × every variant equals the serial scan.

    Indistinguishable means indistinguishable: not just the same result
    ids but the same initial threshold and the same wire bytes — a
    substrate that altered a local threshold or shipped a different
    payload would leak through ``volume_bytes``.
    """
    network, query = case
    for variant in Variant:
        baseline = execute_query(network, query, variant)
        for config in KERNEL_CONFIGS:
            run = execute_query(network, query, variant, **config)
            assert run.result_ids == baseline.result_ids, (variant, config)
            assert np.array_equal(
                run.result.points.values, baseline.result.points.values
            ), (variant, config)
            assert np.array_equal(
                run.result.points.ids, baseline.result.points.ids
            ), (variant, config)
            assert run.initial_threshold == baseline.initial_threshold, (
                variant,
                config,
            )
            assert run.volume_bytes == baseline.volume_bytes, (variant, config)
