"""Unit tests for the shared-memory block cache (``repro.parallel.shmcache``).

The cache is a plain region protocol over any buffer, so these tests
exercise the seqlock, eviction and invalidation machinery over an
ordinary ``bytearray`` — no actual shared-memory segment needed; the
cross-process path is covered by the engine differential tests.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.parallel.shmcache import (
    LocalBlockCache,
    SharedBlockCache,
    cache_enabled,
    cache_geometry,
    cache_region_nbytes,
    make_key,
)
from repro.parallel.shmcache import _DIR, _HEADER  # type: ignore[attr-defined]

SLOTS = 4
SLOT_BYTES = 1024


@pytest.fixture
def cache(tmp_path):
    buf = memoryview(bytearray(cache_region_nbytes(SLOTS, SLOT_BYTES)))
    SharedBlockCache.format(buf, 0, SLOTS, SLOT_BYTES, epoch=7)
    return SharedBlockCache(buf, 0, str(tmp_path / "writer.lock"))


def _payload(seed: int = 0) -> tuple[dict, dict]:
    rng = np.random.default_rng(seed)
    meta = {"threshold": 0.25, "examined": 12 + seed}
    arrays = {
        "positions": rng.integers(0, 100, size=8, dtype=np.int64),
        "proj": rng.random((8, 3)),
    }
    return meta, arrays


class TestRoundTrip:
    def test_put_get_returns_identical_payload(self, cache):
        key = make_key("scan", (0, 2), 0.5)
        meta, arrays = _payload()
        assert cache.put(key, meta, arrays)
        hit = cache.get(key)
        assert hit is not None
        got_meta, got_arrays, token = hit
        assert got_meta["threshold"] == meta["threshold"]
        assert got_meta["examined"] == meta["examined"]
        for name, array in arrays.items():
            assert np.array_equal(got_arrays[name], array)
            assert not got_arrays[name].flags.writeable
        assert cache.still_valid(token)
        assert cache.stats.hits == 1 and cache.stats.publishes == 1

    def test_absent_key_misses(self, cache):
        assert cache.get(make_key("scan", (1,))) is None
        assert cache.stats.misses == 1

    def test_duplicate_publish_is_success_without_second_slot(self, cache):
        key = make_key("proj", (0, 1))
        meta, arrays = _payload()
        assert cache.put(key, meta, arrays)
        assert cache.put(key, meta, arrays)
        assert cache.stats.publishes == 2
        assert cache.as_dict()["live_entries"] == 1

    def test_make_key_distinguishes_thresholds_and_subspaces(self):
        assert make_key("scan", (0, 1), 0.5) != make_key("scan", (0, 1), 0.5000001)
        assert make_key("scan", (0, 1), 0.5) != make_key("scan", (0, 2), 0.5)
        assert make_key("scan", (0, 1), 0.5) != make_key("proj", (0, 1), 0.5)


class TestSeqlock:
    def test_odd_generation_entry_is_skipped(self, cache):
        key = make_key("scan", (0,))
        cache.put(key, *_payload())
        # Simulate a writer caught mid-publication: flip gen odd.
        gen, digest, epoch, stamp, used = _DIR.unpack_from(cache._buf, cache._dir_base)
        _DIR.pack_into(cache._buf, cache._dir_base, gen + 1, digest, epoch, stamp, used)
        assert cache.get(key) is None
        assert cache.stats.misses == 1

    def test_token_invalidates_when_slot_is_overwritten(self, cache):
        key = make_key("scan", (0,))
        cache.put(key, *_payload())
        _meta, _arrays, token = cache.get(key)
        assert cache.still_valid(token)
        # Fill every slot so a further publish evicts the one we read.
        for i in range(SLOTS):
            cache.put(make_key("scan", (9, i)), *_payload(i))
        assert not cache.still_valid(token)

    def test_second_handle_over_same_buffer_sees_publication(self, cache, tmp_path):
        key = make_key("ext", 3, "block")
        meta, arrays = _payload(5)
        cache.put(key, meta, arrays)
        other = SharedBlockCache(cache._buf, 0, str(tmp_path / "writer.lock"))
        hit = other.get(key)
        assert hit is not None
        assert np.array_equal(hit[1]["positions"], arrays["positions"])


class TestInvalidation:
    def test_epoch_bump_invalidates_wholesale(self, cache):
        key = make_key("scan", (0, 1))
        cache.put(key, *_payload())
        assert cache.get(key) is not None
        cache.bump_epoch(8)
        assert cache.get(key) is None
        assert cache.as_dict()["live_entries"] == 0

    def test_new_epoch_publications_hit_again(self, cache):
        key = make_key("scan", (0, 1))
        cache.put(key, *_payload())
        cache.bump_epoch(8)
        cache.put(key, *_payload(1))
        hit = cache.get(key)
        assert hit is not None
        assert hit[0]["examined"] == 13


class TestEviction:
    def test_lru_evicts_least_recently_stamped(self, cache):
        keys = [make_key("scan", (i,)) for i in range(SLOTS + 1)]
        for key in keys[:SLOTS]:
            cache.put(key, *_payload())
        cache.get(keys[0])  # refresh slot 0's stamp
        cache.put(keys[SLOTS], *_payload())
        assert cache.stats.evictions == 1
        assert cache.get(keys[0]) is not None
        assert cache.get(keys[SLOTS]) is not None
        # Exactly one of the untouched middle entries was evicted.
        survivors = sum(cache.get(k) is not None for k in keys[1:SLOTS])
        assert survivors == SLOTS - 2

    def test_stale_epoch_entries_evicted_first(self, cache):
        old = make_key("scan", (0,))
        cache.put(old, *_payload())
        cache.bump_epoch(8)
        for i in range(SLOTS - 1):
            cache.put(make_key("scan", (1, i)), *_payload(i))
        # All slots now used; the next publish must pick the stale-epoch
        # slot over any current-epoch entry.
        cache.put(make_key("scan", (2,)), *_payload())
        assert cache.stats.evictions == 1
        assert cache.get(make_key("scan", (2,))) is not None
        for i in range(SLOTS - 1):
            assert cache.get(make_key("scan", (1, i))) is not None

    def test_oversize_payload_is_rejected(self, cache):
        huge = {"blob": np.zeros(SLOT_BYTES, dtype=np.float64)}
        assert not cache.put(make_key("scan", (0,)), {}, huge)
        assert cache.stats.oversize == 1
        assert cache.get(make_key("scan", (0,))) is None


class TestLocalFallback:
    def test_same_interface_and_always_valid_tokens(self):
        local = LocalBlockCache(slots=2)
        key = make_key("scan", (0,), 0.5)
        meta, arrays = _payload()
        assert local.put(key, meta, arrays)
        got_meta, got_arrays, token = local.get(key)
        assert got_meta["examined"] == meta["examined"]
        assert np.array_equal(got_arrays["proj"], arrays["proj"])
        assert local.still_valid(token)
        assert local.get(make_key("scan", (1,))) is None
        assert local.stats.hits == 1 and local.stats.misses == 1

    def test_bounded_by_slot_count(self):
        local = LocalBlockCache(slots=2)
        for i in range(3):
            local.put(make_key("scan", (i,)), *_payload(i))
        assert local.stats.evictions == 1
        assert local.as_dict()["live_entries"] == 2


class TestKnobs:
    def test_cache_enabled_tri_state(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHM_CACHE", raising=False)
        assert cache_enabled() is None
        monkeypatch.setenv("REPRO_SHM_CACHE", "0")
        assert cache_enabled() is False
        monkeypatch.setenv("REPRO_SHM_CACHE", "on")
        assert cache_enabled() is True

    def test_geometry_aligns_and_validates(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM_CACHE_SLOTS", "3")
        monkeypatch.setenv("REPRO_SHM_CACHE_SLOT_BYTES", "100")
        slots, slot_bytes = cache_geometry()
        assert slots == 3 and slot_bytes == 128
        monkeypatch.setenv("REPRO_SHM_CACHE_SLOTS", "0")
        with pytest.raises(ValueError):
            cache_geometry()

    def test_header_region_sizing(self):
        assert cache_region_nbytes(SLOTS, SLOT_BYTES) == 64 + SLOTS * 64 + SLOTS * SLOT_BYTES
        assert _HEADER.size <= 64 and _DIR.size <= 64
