"""Zipf-skewed workload against the shm block cache (LRU under pressure).

The uniform bench workload touches each subspace a handful of times, so
the block cache mostly measures cold publishes — the ROADMAP notes it
never stresses the LRU.  Real serving load is skewed: a few subspaces
dominate (that is exactly what makes gateway coalescing pay off).  This
suite runs the same engine under a small cache (8 slots, forcing
evictions) with a Zipf workload and a uniform one of the same size and
asserts hit-rate monotonicity — skew concentrates probes on few keys,
so its hit rate must strictly exceed the uniform baseline — while both
workloads keep returning exactly the serial reference results.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.dataset import PointSet
from repro.data.workload import generate_skewed_workload, generate_workload
from repro.p2p.network import SuperPeerNetwork
from repro.p2p.topology import Topology
from repro.parallel import ParallelEngine
from repro.skypeer.executor import execute_query
from repro.skypeer.variants import Variant

VARIANT = Variant.FTPM
QUERIES = 24


def _network(seed: int = 31, d: int = 6) -> SuperPeerNetwork:
    rng = np.random.default_rng(seed)
    topo = Topology.generate(n_peers=9, n_superpeers=3, degree=3.0, seed=seed)
    partitions = {}
    next_id = 0
    for peers in topo.peers_of.values():
        for pid in peers:
            partitions[pid] = PointSet(
                rng.random((12, d)), np.arange(next_id, next_id + 12)
            )
            next_id += 12
    return SuperPeerNetwork.from_partitions(topo, partitions)


def _run_workload(network, queries, monkeypatch) -> tuple[float, int, list]:
    """One fresh small-cache engine pass; returns (hit rate, evictions, runs)."""
    monkeypatch.setenv("REPRO_SHM_CACHE", "1")
    monkeypatch.setenv("REPRO_SHM_CACHE_SLOTS", "8")
    with ParallelEngine(2) as engine:
        runs = engine.run_queries(network, queries, [VARIANT])[VARIANT]
        stats = engine.stats
        rate = stats.cache_hit_rate() or 0.0
        evictions = stats.cache_evictions
    return rate, evictions, runs


@pytest.fixture(scope="module")
def network():
    return _network()


def _uniform(network):
    rng = np.random.default_rng(7)
    return generate_workload(
        QUERIES, network.dimensionality, 3,
        list(network.topology.superpeer_ids), rng,
    )


def _zipf(network):
    rng = np.random.default_rng(7)
    return generate_skewed_workload(
        QUERIES, network.dimensionality, 3,
        list(network.topology.superpeer_ids), rng,
        distinct_subspaces=3, zipf_s=1.5,
    )


class TestZipfCachePressure:
    def test_skewed_hit_rate_dominates_uniform(self, network, monkeypatch):
        uniform_rate, _, _ = _run_workload(network, _uniform(network), monkeypatch)
        zipf_rate, _, _ = _run_workload(network, _zipf(network), monkeypatch)
        # Monotonicity: concentrating probes on 3 subspaces must beat
        # spreading the same number of probes over ~20 — by a margin,
        # not within noise.
        assert zipf_rate > uniform_rate + 0.1, (
            f"zipf hit rate {zipf_rate:.3f} does not dominate "
            f"uniform {uniform_rate:.3f}"
        )

    def test_uniform_workload_pressures_the_lru(self, network, monkeypatch):
        """~20 distinct subspaces into 8 slots must evict (shared cache)."""
        from repro.parallel.shm import shm_supported

        queries = _uniform(network)
        distinct = len({tuple(q.subspace) for q in queries})
        assert distinct > 8  # more keys than slots, or the test is vacuous
        _, evictions, _ = _run_workload(network, queries, monkeypatch)
        if shm_supported():
            assert evictions > 0
        else:
            pytest.skip("local fallback cache: eviction counters not comparable")

    def test_skewed_results_stay_correct_under_eviction(self, network, monkeypatch):
        """Cache pressure must never change answers: engine == serial."""
        queries = _zipf(network)
        _, _, runs = _run_workload(network, queries, monkeypatch)
        for query, run in zip(queries, runs):
            serial = execute_query(network, query, VARIANT)
            assert run.result_ids == serial.result_ids, query
