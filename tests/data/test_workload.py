"""Unit tests for query workload generation."""

import numpy as np
import pytest

from repro.data.workload import Query, generate_workload


class TestQuery:
    def test_k(self):
        assert Query(subspace=(0, 2, 5), initiator=3).k == 3


class TestGenerateWorkload:
    def test_workload_size(self, rng):
        queries = generate_workload(25, 8, 3, [0, 1, 2], rng)
        assert len(queries) == 25

    def test_subspace_properties(self, rng):
        for q in generate_workload(50, 8, 3, [0], rng):
            assert len(q.subspace) == 3
            assert len(set(q.subspace)) == 3
            assert q.subspace == tuple(sorted(q.subspace))
            assert all(0 <= d < 8 for d in q.subspace)

    def test_initiators_from_given_ids(self, rng):
        ids = [5, 9, 13]
        for q in generate_workload(50, 6, 2, ids, rng):
            assert q.initiator in ids

    def test_all_subsets_reachable(self, rng):
        """Uniform probability over k-subsets: every pair of dims shows
        up in a large workload over a small space."""
        queries = generate_workload(400, 4, 2, [0], rng)
        seen = {q.subspace for q in queries}
        assert len(seen) == 6  # C(4, 2)

    def test_deterministic_given_rng(self):
        a = generate_workload(10, 6, 3, [0, 1], np.random.default_rng(3))
        b = generate_workload(10, 6, 3, [0, 1], np.random.default_rng(3))
        assert a == b

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            generate_workload(5, 4, 5, [0], rng)  # k > d
        with pytest.raises(ValueError):
            generate_workload(5, 4, 0, [0], rng)  # k < 1
        with pytest.raises(ValueError):
            generate_workload(-1, 4, 2, [0], rng)
        with pytest.raises(ValueError):
            generate_workload(5, 4, 2, [], rng)  # no super-peers
