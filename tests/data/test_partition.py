"""Unit tests for horizontal partitioning."""

import pytest

from repro.core.dataset import PointSet
from repro.data.partition import partition_by_sizes, partition_evenly


class TestPartitionEvenly:
    def test_even_split(self, rng):
        points = PointSet(rng.random((100, 3)))
        parts = partition_evenly(points, 4)
        assert [len(p) for p in parts] == [25, 25, 25, 25]

    def test_remainder_spread(self, rng):
        points = PointSet(rng.random((10, 2)))
        parts = partition_evenly(points, 3)
        assert [len(p) for p in parts] == [4, 3, 3]

    def test_partition_is_exact_cover(self, rng):
        points = PointSet(rng.random((57, 2)))
        parts = partition_evenly(points, 5)
        ids = [i for p in parts for i in p.ids]
        assert sorted(ids) == sorted(points.ids)

    def test_more_parts_than_points(self, rng):
        points = PointSet(rng.random((2, 2)))
        parts = partition_evenly(points, 4)
        assert [len(p) for p in parts] == [1, 1, 0, 0]

    def test_rejects_non_positive(self, rng):
        with pytest.raises(ValueError):
            partition_evenly(PointSet(rng.random((4, 2))), 0)


class TestPartitionBySizes:
    def test_custom_sizes(self, rng):
        points = PointSet(rng.random((10, 2)))
        parts = partition_by_sizes(points, [7, 0, 3])
        assert [len(p) for p in parts] == [7, 0, 3]

    def test_rejects_bad_sum(self, rng):
        points = PointSet(rng.random((10, 2)))
        with pytest.raises(ValueError, match="sizes sum"):
            partition_by_sizes(points, [4, 4])

    def test_rejects_negative(self, rng):
        points = PointSet(rng.random((4, 2)))
        with pytest.raises(ValueError, match="non-negative"):
            partition_by_sizes(points, [5, -1])
