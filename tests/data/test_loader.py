"""Tests for the CSV loader."""

import numpy as np
import pytest

from repro.core.extended_skyline import subspace_skyline_points
from repro.data.loader import load_csv

CSV = """name,price,rating,distance,junk
Alpha,100,4.5,2.0,x
Beta,80,3.0,1.0,y
Gamma,150,5.0,0.5,z
Delta,not_a_number,2.0,3.0,w
Epsilon,120,4.0,,v
Zeta,60,1.0,5.0,u
"""


@pytest.fixture
def csv_path(tmp_path):
    path = tmp_path / "hotels.csv"
    path.write_text(CSV)
    return path


class TestLoadCsv:
    def test_loads_and_normalizes(self, csv_path):
        loaded = load_csv(csv_path, ["price", "rating", "distance"], maximize=["rating"])
        assert loaded.dimensionality == 3
        assert len(loaded.points) == 4  # Delta and Epsilon dropped
        assert loaded.skipped_rows == 2
        values = loaded.points.values
        assert values.min() >= 0.0 and values.max() <= 1.0

    def test_maximize_inverts(self, csv_path):
        # price+rating only: Epsilon's empty distance does not matter,
        # so 5 rows load (only Delta is dropped).
        loaded = load_csv(csv_path, ["price", "rating"], maximize=["rating"])
        assert len(loaded.points) == 5
        assert loaded.skipped_rows == 1
        # Gamma has the best rating (5.0) -> after inversion + normalize
        # its rating coordinate must be the smallest (0.0).
        ratings = loaded.points.values[:, 1]
        prices_raw = [100, 80, 150, 120, 60]
        gamma_row = prices_raw.index(150)
        assert ratings[gamma_row] == pytest.approx(0.0)

    def test_denormalize_roundtrip(self, csv_path):
        loaded = load_csv(csv_path, ["price", "rating"], maximize=["rating"])
        spec = loaded.columns[0]  # price, minimized
        raw_prices = sorted([100.0, 80.0, 150.0, 120.0, 60.0])
        recovered = sorted(
            spec.denormalize(v) for v in loaded.points.values[:, 0]
        )
        assert recovered == pytest.approx(raw_prices)

    def test_denormalize_maximized_column(self, csv_path):
        loaded = load_csv(csv_path, ["price", "rating"], maximize=["rating"])
        spec = loaded.columns[1]
        recovered = sorted(spec.denormalize(v) for v in loaded.points.values[:, 1])
        assert recovered == pytest.approx([1.0, 3.0, 4.0, 4.5, 5.0])

    def test_skyline_over_loaded_data(self, csv_path):
        """End-to-end sanity: cheapest-and-best-rated hotels win."""
        loaded = load_csv(csv_path, ["price", "rating"], maximize=["rating"])
        sky = subspace_skyline_points(loaded.points, (0, 1))
        assert 1 <= len(sky) <= 5

    def test_missing_column(self, csv_path):
        with pytest.raises(ValueError, match="missing columns"):
            load_csv(csv_path, ["price", "stars"])

    def test_maximize_must_be_loaded(self, csv_path):
        with pytest.raises(ValueError, match="not loaded"):
            load_csv(csv_path, ["price"], maximize=["rating"])

    def test_empty_columns(self, csv_path):
        with pytest.raises(ValueError, match="at least one"):
            load_csv(csv_path, [])

    def test_all_rows_bad(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\nx,y\n")
        with pytest.raises(ValueError, match="no usable rows"):
            load_csv(path, ["a", "b"])

    def test_constant_column_normalizes_to_zero(self, tmp_path):
        path = tmp_path / "const.csv"
        path.write_text("a,b\n5,1\n5,2\n")
        loaded = load_csv(path, ["a", "b"])
        assert np.all(loaded.points.values[:, 0] == 0.0)
