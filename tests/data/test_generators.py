"""Unit tests for the synthetic data generators."""

import numpy as np
import pytest

from repro.data.generators import (
    CLUSTER_STD,
    GENERATOR_KINDS,
    anticorrelated,
    clustered,
    correlated,
    make_generator,
    uniform,
)


class TestUniform:
    def test_shape_and_range(self, rng):
        data = uniform(500, 4, rng)
        assert data.shape == (500, 4)
        assert data.min() >= 0.0 and data.max() < 1.0

    def test_deterministic_with_seed(self):
        a = uniform(10, 3, np.random.default_rng(7))
        b = uniform(10, 3, np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)

    def test_rejects_bad_args(self, rng):
        with pytest.raises(ValueError):
            uniform(-1, 3, rng)
        with pytest.raises(ValueError):
            uniform(10, 0, rng)

    def test_zero_points(self, rng):
        assert uniform(0, 3, rng).shape == (0, 3)


class TestClustered:
    def test_points_concentrate_around_centroid(self, rng):
        centroid = np.full((1, 3), 0.5)
        data = clustered(2000, 3, rng, centroids=centroid)
        # within ~3 sigma of the centroid on each axis
        assert np.abs(data.mean(axis=0) - 0.5).max() < 0.05
        assert abs(data.std() - CLUSTER_STD) < 0.05

    def test_variance_matches_paper(self, rng):
        """Paper: Gaussian on each axis with variance 0.025."""
        data = clustered(5000, 2, rng, centroids=np.full((1, 2), 0.5))
        assert np.var(data[:, 0]) == pytest.approx(0.025, rel=0.15)

    def test_clipped_to_unit_cube(self, rng):
        data = clustered(1000, 2, rng, centroids=np.array([[0.0, 1.0]]))
        assert data.min() >= 0.0 and data.max() <= 1.0

    def test_multiple_clusters(self, rng):
        cents = np.array([[0.1, 0.1], [0.9, 0.9]])
        data = clustered(1000, 2, rng, centroids=cents)
        near_a = np.sum(np.linalg.norm(data - cents[0], axis=1) < 0.4)
        near_b = np.sum(np.linalg.norm(data - cents[1], axis=1) < 0.4)
        assert near_a > 200 and near_b > 200

    def test_random_centroids(self, rng):
        data = clustered(100, 3, rng, n_clusters=4)
        assert data.shape == (100, 3)

    def test_rejects_bad_centroids(self, rng):
        with pytest.raises(ValueError, match="centroids"):
            clustered(10, 3, rng, centroids=np.zeros((2, 2)))


class TestCorrelated:
    def test_coordinates_positively_correlated(self, rng):
        data = correlated(3000, 2, rng)
        r = np.corrcoef(data[:, 0], data[:, 1])[0, 1]
        assert r > 0.5

    def test_range(self, rng):
        data = correlated(500, 4, rng)
        assert data.min() >= 0.0 and data.max() <= 1.0


class TestAnticorrelated:
    def test_coordinates_negatively_correlated(self, rng):
        data = anticorrelated(3000, 2, rng)
        r = np.corrcoef(data[:, 0], data[:, 1])[0, 1]
        assert r < -0.3

    def test_bigger_skyline_than_correlated(self, rng):
        """The classic property: anticorrelated data has a much larger
        skyline than correlated data of the same size."""
        from repro.core.dataset import PointSet
        from repro.core.dominance import skyline_mask

        anti = PointSet(anticorrelated(800, 3, rng))
        corr = PointSet(correlated(800, 3, np.random.default_rng(2)))
        assert skyline_mask(anti.values).sum() > 3 * skyline_mask(corr.values).sum()


class TestFactory:
    def test_all_kinds_resolvable(self):
        for kind in GENERATOR_KINDS:
            assert callable(make_generator(kind))

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown generator"):
            make_generator("zipfian")
