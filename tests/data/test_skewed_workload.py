"""Tests for the Zipf-skewed workload generator."""

from collections import Counter

import numpy as np
import pytest

from repro.data.workload import generate_skewed_workload


class TestSkewedWorkload:
    def test_respects_pool_size(self, rng):
        queries = generate_skewed_workload(100, 8, 3, [0, 1], rng, distinct_subspaces=4)
        assert len(queries) == 100
        assert len({q.subspace for q in queries}) <= 4

    def test_subspace_shape(self, rng):
        for q in generate_skewed_workload(30, 6, 2, [0], rng):
            assert len(q.subspace) == 2
            assert q.subspace == tuple(sorted(q.subspace))

    def test_popularity_is_skewed(self, rng):
        queries = generate_skewed_workload(
            500, 8, 3, [0], rng, distinct_subspaces=5, zipf_s=1.5
        )
        counts = sorted(Counter(q.subspace for q in queries).values(), reverse=True)
        # the most popular subspace should dwarf the least popular
        assert counts[0] > 3 * counts[-1]

    def test_initiators_uniformish(self, rng):
        ids = [0, 1, 2, 3]
        queries = generate_skewed_workload(400, 6, 2, ids, rng)
        counts = Counter(q.initiator for q in queries)
        assert set(counts) == set(ids)
        assert max(counts.values()) < 3 * min(counts.values())

    def test_deterministic(self):
        a = generate_skewed_workload(20, 6, 2, [0, 1], np.random.default_rng(5))
        b = generate_skewed_workload(20, 6, 2, [0, 1], np.random.default_rng(5))
        assert a == b

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            generate_skewed_workload(5, 6, 2, [0], rng, distinct_subspaces=0)
        with pytest.raises(ValueError):
            generate_skewed_workload(5, 6, 2, [0], rng, zipf_s=0)
        with pytest.raises(ValueError):
            generate_skewed_workload(5, 6, 2, [], rng)

    def test_small_subspace_universe(self, rng):
        """d=2, k=2 has a single possible subspace: pool collapses."""
        queries = generate_skewed_workload(10, 2, 2, [0], rng, distinct_subspaces=5)
        assert {q.subspace for q in queries} == {(0, 1)}
