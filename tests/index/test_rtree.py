"""Unit tests for the main-memory R-tree."""

import numpy as np
import pytest

from repro.index.rtree import RTree


def _random_tree(rng, n=300, d=3, bulk=False, max_entries=8):
    values = rng.random((n, d))
    if bulk:
        tree = RTree.bulk_load(values, max_entries=max_entries)
    else:
        tree = RTree(d, max_entries=max_entries)
        for i in range(n):
            tree.insert(i, values[i])
    return tree, values


class TestConstruction:
    def test_parameters_validated(self):
        with pytest.raises(ValueError):
            RTree(0)
        with pytest.raises(ValueError):
            RTree(2, max_entries=2)
        with pytest.raises(ValueError):
            RTree(2, max_entries=8, min_entries=5)

    def test_empty_tree(self):
        tree = RTree(3)
        assert len(tree) == 0
        assert list(tree) == []
        assert tree.height() == 1

    def test_insert_grows(self, rng):
        tree, values = _random_tree(rng, n=100)
        assert len(tree) == 100
        assert tree.height() > 1

    def test_iter_returns_all_points(self, rng):
        tree, values = _random_tree(rng, n=50)
        seen = sorted(i for i, _ in tree)
        assert seen == list(range(50))

    def test_coordinate_shape_checked(self):
        tree = RTree(3)
        with pytest.raises(ValueError, match="expected 3"):
            tree.insert(0, np.array([1.0, 2.0]))


class TestBulkLoad:
    def test_bulk_load_contains_all(self, rng):
        tree, values = _random_tree(rng, n=500, bulk=True)
        assert len(tree) == 500
        assert sorted(i for i, _ in tree) == list(range(500))

    def test_bulk_load_empty(self):
        tree = RTree.bulk_load(np.empty((0, 3)))
        assert len(tree) == 0

    def test_bulk_load_custom_ids(self, rng):
        values = rng.random((20, 2))
        tree = RTree.bulk_load(values, ids=range(100, 120))
        assert sorted(i for i, _ in tree) == list(range(100, 120))

    def test_bulk_load_window_matches_insert(self, rng):
        values = rng.random((200, 3))
        bulk = RTree.bulk_load(values)
        incr = RTree(3)
        for i in range(200):
            incr.insert(i, values[i])
        lo, hi = np.full(3, 0.2), np.full(3, 0.7)
        assert sorted(i for i, _ in bulk.window(lo, hi)) == sorted(
            i for i, _ in incr.window(lo, hi)
        )


class TestWindow:
    def test_window_matches_linear_scan(self, rng):
        tree, values = _random_tree(rng, n=400)
        lo, hi = np.array([0.1, 0.2, 0.0]), np.array([0.6, 0.9, 0.5])
        expected = {
            i for i in range(len(values)) if np.all(lo <= values[i]) and np.all(values[i] <= hi)
        }
        got = {i for i, _ in tree.window(lo, hi)}
        assert got == expected

    def test_empty_window(self, rng):
        tree, _values = _random_tree(rng, n=50)
        got = tree.window(np.full(3, 2.0), np.full(3, 3.0))
        assert got == []


class TestDominanceQueries:
    def test_exists_dominator_matches_scan(self, rng):
        tree, values = _random_tree(rng, n=300)
        for _ in range(50):
            probe = rng.random(3)
            expected = any(
                np.all(v <= probe) and np.any(v < probe) for v in values
            )
            assert tree.exists_dominator(probe) == expected

    def test_exists_dominator_strict(self, rng):
        tree, values = _random_tree(rng, n=300)
        for _ in range(50):
            probe = rng.random(3)
            expected = any(np.all(v < probe) for v in values)
            assert tree.exists_dominator(probe, strict=True) == expected

    def test_identical_point_is_not_dominator(self):
        tree = RTree(2)
        tree.insert(0, np.array([0.5, 0.5]))
        assert not tree.exists_dominator(np.array([0.5, 0.5]))

    def test_pop_dominated(self, rng):
        tree, values = _random_tree(rng, n=200)
        probe = np.full(3, 0.5)
        expected = {
            i
            for i in range(len(values))
            if np.all(probe <= values[i]) and np.any(probe < values[i])
        }
        victims = {i for i, _ in tree.pop_dominated(probe)}
        assert victims == expected
        assert len(tree) == 200 - len(expected)
        assert not tree.exists_dominator(np.full(3, 0.99)) or True  # tree still valid
        # remaining points are exactly the non-dominated ones
        assert {i for i, _ in tree} == set(range(200)) - expected


class TestDeletion:
    def test_delete_removes_point(self, rng):
        tree, values = _random_tree(rng, n=100)
        assert tree.delete(42, values[42])
        assert len(tree) == 99
        assert 42 not in {i for i, _ in tree}

    def test_delete_missing_returns_false(self, rng):
        tree, _values = _random_tree(rng, n=10)
        assert not tree.delete(5, np.full(3, 0.12345))

    def test_delete_everything(self, rng):
        tree, values = _random_tree(rng, n=120)
        order = rng.permutation(120)
        for i in order:
            assert tree.delete(int(i), values[i])
        assert len(tree) == 0
        assert list(tree) == []

    def test_delete_then_queries_consistent(self, rng):
        tree, values = _random_tree(rng, n=150)
        removed = set()
        for i in range(0, 150, 3):
            tree.delete(i, values[i])
            removed.add(i)
        lo, hi = np.zeros(3), np.ones(3)
        remaining = {i for i, _ in tree.window(lo, hi)}
        assert remaining == set(range(150)) - removed

    def test_interleaved_insert_delete(self, rng):
        tree = RTree(2, max_entries=4)
        values = rng.random((60, 2))
        for i in range(60):
            tree.insert(i, values[i])
            if i % 2 == 1:
                tree.delete(i - 1, values[i - 1])
        assert len(tree) == 30
        assert {i for i, _ in tree} == {i for i in range(60) if i % 2 == 1}
