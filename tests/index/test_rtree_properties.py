"""Property-based tests for the R-tree (hypothesis)."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.rtree import RTree

coords = st.lists(
    st.floats(0, 1, allow_nan=False, width=32), min_size=2, max_size=2
).map(lambda xs: np.asarray(xs, dtype=float))


@given(st.lists(coords, min_size=0, max_size=60))
@settings(max_examples=80, deadline=None)
def test_insert_iter_roundtrip(points):
    tree = RTree(2, max_entries=4)
    for i, p in enumerate(points):
        tree.insert(i, p)
    assert len(tree) == len(points)
    recovered = {i: tuple(c) for i, c in tree}
    assert recovered == {i: tuple(p) for i, p in enumerate(points)}


@given(st.lists(coords, min_size=1, max_size=60), coords, coords)
@settings(max_examples=80, deadline=None)
def test_window_matches_scan(points, lo, hi)-> None:
    lo, hi = np.minimum(lo, hi), np.maximum(lo, hi)
    tree = RTree(2, max_entries=4)
    for i, p in enumerate(points):
        tree.insert(i, p)
    expected = {
        i for i, p in enumerate(points) if np.all(lo <= p) and np.all(p <= hi)
    }
    assert {i for i, _ in tree.window(lo, hi)} == expected


@given(st.lists(coords, min_size=1, max_size=50), coords)
@settings(max_examples=80, deadline=None)
def test_dominator_queries_match_scan(points, probe):
    tree = RTree(2, max_entries=4)
    for i, p in enumerate(points):
        tree.insert(i, p)
    plain = any(np.all(p <= probe) and np.any(p < probe) for p in points)
    strict = any(np.all(p < probe) for p in points)
    assert tree.exists_dominator(probe) == plain
    assert tree.exists_dominator(probe, strict=True) == strict


@given(st.lists(coords, min_size=1, max_size=50), st.data())
@settings(max_examples=60, deadline=None)
def test_random_deletions_keep_tree_consistent(points, data):
    tree = RTree(2, max_entries=4)
    for i, p in enumerate(points):
        tree.insert(i, p)
    alive = dict(enumerate(points))
    doomed = data.draw(
        st.lists(st.sampled_from(sorted(alive)), max_size=len(alive), unique=True)
    )
    for i in doomed:
        assert tree.delete(i, alive.pop(i))
    assert len(tree) == len(alive)
    assert {i: tuple(c) for i, c in tree} == {i: tuple(p) for i, p in alive.items()}


@given(st.lists(coords, min_size=1, max_size=60))
@settings(max_examples=60, deadline=None)
def test_bulk_load_equals_incremental(points):
    arr = np.vstack(points)
    bulk = RTree.bulk_load(arr, max_entries=4)
    assert len(bulk) == len(points)
    assert {i: tuple(c) for i, c in bulk} == {i: tuple(p) for i, p in enumerate(points)}
