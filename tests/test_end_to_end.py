"""One end-to-end scenario composing the whole public surface.

Build → query (all variants, both engines) → constrained query →
churn + data updates → cached repeat queries → persist → reload →
re-verify.  Everything is checked against brute-force oracles at every
stage; if this test is green the README's promises hold together, not
just piecewise.
"""

import numpy as np
import pytest

import repro
from repro.core.constrained import RangeConstraint
from repro.p2p.churn import fail_superpeer
from repro.skypeer.cache import CachedQueryEngine
from repro.skypeer.protocol import run_protocol


@pytest.mark.slow
def test_full_story(tmp_path):
    rng = np.random.default_rng(2026)

    # --- build -------------------------------------------------------
    net = repro.SuperPeerNetwork.build(
        n_peers=48, points_per_peer=25, dimensionality=5, n_superpeers=6, seed=7
    )
    report = net.preprocessing
    assert 0 < report.sel_sp <= report.sel_p <= 1

    def oracle(subspace):
        return repro.subspace_skyline_points(net.all_points(), subspace).id_set()

    # --- plain queries, all variants, both engines ---------------------
    query = repro.Query(subspace=(0, 2, 4), initiator=net.topology.superpeer_ids[0])
    for variant in repro.Variant:
        assert repro.execute_query(net, query, variant).result_ids == oracle((0, 2, 4))
        assert run_protocol(net, query, variant).result_ids == oracle((0, 2, 4))

    # --- constrained -------------------------------------------------
    constraint = RangeConstraint.from_dict({0: (0.25, 0.9)})
    cq = repro.ConstrainedQuery(subspace=(0, 1), initiator=query.initiator,
                                constraint=constraint)
    c_run = repro.execute_constrained_query(net, cq)
    c_truth = repro.constrained_subspace_skyline(
        net.all_points(), (0, 1), constraint
    ).id_set()
    assert c_run.used_full_data and c_run.result_ids == c_truth

    # --- churn + updates ----------------------------------------------
    event = repro.join_peer(
        net, net.topology.superpeer_ids[1],
        repro.PointSet(rng.random((20, 5)), np.arange(90_000, 90_020)),
    )
    repro.insert_points(
        net, event.peer_id, repro.PointSet(np.zeros((1, 5)), np.array([99_999]))
    )
    repro.delete_points(net, event.peer_id, [90_000])
    repro.fail_peer(net, next(p for p in net.peers if p != event.peer_id))
    fail_superpeer(net, net.topology.superpeer_ids[-1])
    assert net.topology.is_connected()
    assert repro.execute_query(net, query, "rtpm").result_ids == oracle((0, 2, 4))
    assert 99_999 in oracle((0, 2, 4))  # the all-zeros point rules

    # --- cache ---------------------------------------------------------
    engine = CachedQueryEngine(net)
    first = engine.execute(query)
    again = engine.execute(query)
    assert first.result_ids == again.result_ids == oracle((0, 2, 4))
    assert engine.hits >= net.n_superpeers

    # --- persistence ---------------------------------------------------
    path = tmp_path / "net.npz"
    repro.save_network(path, net)
    reloaded = repro.load_network(path)
    assert (
        repro.execute_query(reloaded, query, "ftpm").result_ids
        == oracle((0, 2, 4))
    )
