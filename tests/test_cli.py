"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig3a", "fig3f", "fig4h"):
            assert name in out


class TestFigure:
    def test_runs_figure_text(self, capsys):
        assert main(["figure", "fig3a", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "SEL_p" in out

    def test_runs_figure_markdown(self, capsys):
        assert main(["figure", "fig3a", "--scale", "tiny", "--markdown"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("### fig3a")

    def test_rejects_unknown_figure(self):
        with pytest.raises(SystemExit):
            main(["figure", "fig99"])


class TestQuery:
    def test_single_query(self, capsys):
        code = main([
            "query", "--peers", "20", "--points-per-peer", "15",
            "--dims", "4", "--subspace", "0,2", "--variant", "rtpm",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "RTPM" in out
        assert "computational time" in out
        assert "transferred volume" in out

    def test_naive_variant(self, capsys):
        code = main([
            "query", "--peers", "10", "--points-per-peer", "10",
            "--dims", "3", "--subspace", "0,1", "--variant", "naive",
        ])
        assert code == 0

    def test_clustered_dataset(self, capsys):
        code = main([
            "query", "--peers", "10", "--points-per-peer", "10",
            "--dims", "3", "--subspace", "0,1,2", "--dataset", "clustered",
        ])
        assert code == 0

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_explain(self, capsys):
        code = main([
            "query", "--peers", "12", "--points-per-peer", "10",
            "--dims", "3", "--subspace", "0,1", "--explain",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "scan effort" in out
        assert "busiest super-peers" in out

    def test_json_report(self, capsys):
        import json

        code = main([
            "query", "--peers", "12", "--points-per-peer", "10",
            "--dims", "3", "--subspace", "0,1", "--json",
        ])
        assert code == 0
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("{"):])
        assert payload["query"]["subspace"] == [0, 1]


class TestTrace:
    def test_trace_writes_valid_chrome_trace(self, tmp_path, capsys):
        import json

        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.json"
        code = main([
            "trace", "--peers", "16", "--points-per-peer", "10",
            "--dims", "4", "--subspace", "0,2", "--variant", "ftpm",
            "--seed", "1", "--output", str(trace_path),
            "--metrics-output", str(metrics_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "perfetto" in out
        assert "metrics:" in out
        with open(trace_path, encoding="utf-8") as handle:
            trace = json.load(handle)
        phases = {event["ph"] for event in trace["traceEvents"]}
        assert phases <= {"X", "M"} and "X" in phases
        with open(metrics_path, encoding="utf-8") as handle:
            snapshot = json.load(handle)
        assert snapshot["totals"]["skypeer.queries"] == 1

    def test_trace_leaves_observability_uninstalled(self, tmp_path, capsys):
        from repro.obs import active_metrics, active_tracer

        code = main([
            "trace", "--peers", "10", "--points-per-peer", "8",
            "--dims", "3", "--subspace", "0,1",
            "--output", str(tmp_path / "t.json"),
        ])
        assert code == 0
        assert active_tracer() is None
        assert active_metrics() is None


class TestExport:
    def test_export_writes_file(self, tmp_path, capsys):
        target = tmp_path / "EXP.md"
        code = main(["export", "--scale", "tiny", "--output", str(target)])
        assert code == 0
        assert target.exists()
        assert "fig3a" in target.read_text()


class TestSocketTransport:
    # 60 peers -> 3 super-peers, so queries really cross sockets
    _NET = ["--peers", "60", "--points-per-peer", "8", "--dims", "4",
            "--subspace", "0,2"]

    @staticmethod
    def _json_tail(out: str):
        """Parse the JSON document after the build-progress preamble."""
        import json

        return json.loads(out[out.index("{"):])

    def test_query_over_sockets_reports_measured_vs_estimated(self, capsys):
        code = main(["query", *self._NET, "--variant", "FTPM",
                     "--transport", "socket"])
        assert code == 0
        out = capsys.readouterr().out
        assert "|SKY_U|" in out
        assert "socket (task mode)" in out
        assert "measured bytes" in out
        assert "estimated bytes" in out

    def test_query_json_includes_transport_report(self, capsys):
        code = main(["query", *self._NET, "--variant", "RTFM",
                     "--transport", "socket", "--json"])
        assert code == 0
        payload = self._json_tail(capsys.readouterr().out)
        assert payload["transport"] == "socket"
        assert payload["payload_bytes"] > 0
        assert payload["estimated_bytes"] > payload["payload_bytes"]
        assert payload["result_ids"]

    def test_socket_and_sim_agree_on_result_size(self, capsys):
        sizes = {}
        for transport in ("sim", "socket"):
            code = main(["query", *self._NET, "--variant", "naive",
                         "--transport", transport, "--json"])
            assert code == 0
            payload = self._json_tail(capsys.readouterr().out)
            sizes[transport] = (
                payload["result_size"]
                if transport == "socket"
                else payload["result_points"]
            )
        assert sizes["sim"] == sizes["socket"]

    def test_env_selects_transport(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_TRANSPORT", "socket")
        code = main(["query", *self._NET, "--variant", "FTFM"])
        assert code == 0
        assert "socket (task mode)" in capsys.readouterr().out

    def test_trace_surfaces_byte_comparison(self, tmp_path, capsys):
        import json

        target = tmp_path / "trace.json"
        code = main(["trace", *self._NET, "--variant", "FTPM",
                     "--transport", "socket", "--output", str(target)])
        assert code == 0
        out = capsys.readouterr().out
        assert "measured bytes" in out
        assert "estimated bytes" in out
        trace = json.loads(target.read_text())
        names = {event.get("name") for event in trace["traceEvents"]}
        assert "socket query" in names
