"""Property: coalesced gateway answers are byte-identical to serial execution.

For any interleaving of concurrent client requests — arbitrary subspace
repetition, variant mix, connection assignment and send staggering —
every ``ok`` response's canonical ``result`` bytes must equal the bytes
a serial, uncoalesced :func:`execute_query` produces for that
``(subspace, variant)``.  Coalescing, dispatcher scheduling and the
shared-future fan-out must be entirely invisible in the payload.
"""

from __future__ import annotations

import asyncio

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.data.workload import Query
from repro.serving.client import GatewayClient
from repro.serving.gateway import GatewayConfig, QueryGateway
from repro.serving.proto import encode_payload, result_payload
from repro.skypeer.executor import execute_query

from .conftest import build_network, run

NETWORK = build_network(seed=23, d=4)
SUBSPACES = [(0, 1), (1, 3), (0, 2, 3), (2,)]
VARIANTS = ["FTPM", "RTFM"]

#: Serial reference bytes, computed once per (subspace, variant).
_REFERENCE: dict[tuple, bytes] = {}


def reference_bytes(subspace: tuple[int, ...], variant: str) -> bytes:
    key = (subspace, variant)
    if key not in _REFERENCE:
        initiator = NETWORK.topology.superpeer_ids[0]
        store = execute_query(
            NETWORK, Query(subspace=subspace, initiator=initiator), variant
        ).result
        _REFERENCE[key] = encode_payload(result_payload(store))
    return _REFERENCE[key]


request_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=len(SUBSPACES) - 1),
        st.integers(min_value=0, max_value=len(VARIANTS) - 1),
        st.integers(min_value=0, max_value=2),  # connection assignment
        st.integers(min_value=0, max_value=3),  # stagger slot (ms)
    ),
    min_size=1,
    max_size=10,
)


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(requests=request_strategy, dispatchers=st.integers(min_value=1, max_value=3))
def test_any_interleaving_matches_serial_bytes(requests, dispatchers):
    async def scenario():
        gateway = QueryGateway(
            NETWORK, config=GatewayConfig(dispatchers=dispatchers)
        )
        async with gateway:
            host, port = gateway.address
            clients = [await GatewayClient.connect(host, port) for _ in range(3)]

            async def one(spec):
                subspace_i, variant_i, conn_i, slot = spec
                await asyncio.sleep(slot * 0.001)
                return await clients[conn_i].query(
                    SUBSPACES[subspace_i], VARIANTS[variant_i]
                )

            try:
                responses = await asyncio.gather(*[one(spec) for spec in requests])
            finally:
                for client in clients:
                    await client.close()
        return responses, gateway.stats

    responses, stats = run(asyncio.wait_for(scenario(), timeout=60.0))
    assert len(responses) == len(requests)
    for spec, response in zip(requests, responses):
        subspace_i, variant_i, _, _ = spec
        assert response.ok, response.payload
        got = encode_payload(response.payload["result"])
        assert got == reference_bytes(SUBSPACES[subspace_i], VARIANTS[variant_i])
    # accounting closes: every query either executed or coalesced
    assert stats.executed + stats.coalesce_hits == len(requests)


def test_coalesced_and_uncoalesced_responses_share_result_bytes():
    """Direct pairing: a forced-coalesced pair and a lone request agree."""
    import threading

    release = threading.Event()

    def dispatch(net, query, variant):
        release.wait(timeout=10.0)
        return execute_query(net, query, variant).result

    async def scenario():
        gateway = QueryGateway(
            NETWORK, config=GatewayConfig(dispatchers=1), dispatch=dispatch
        )
        async with gateway:
            host, port = gateway.address
            async with await GatewayClient.connect(host, port) as client:
                pair = [asyncio.ensure_future(client.query([0, 1])) for _ in range(2)]
                await asyncio.sleep(0.1)
                release.set()
                a, b = await asyncio.gather(*pair)
        return a, b, gateway.stats

    a, b, stats = run(asyncio.wait_for(scenario(), timeout=30.0))
    assert stats.coalesce_hits == 1
    assert {a.payload["coalesced"], b.payload["coalesced"]} == {True, False}
    expected = reference_bytes((0, 1), "FTPM")
    assert encode_payload(a.payload["result"]) == expected
    assert encode_payload(b.payload["result"]) == expected
