"""Gateway behavior: config, admission, coalescing, stats, backends."""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.serving.client import GatewayClient
from repro.serving.gateway import GatewayConfig, QueryGateway, TokenBucket
from repro.serving.proto import (
    SHED_QUEUE_FULL,
    SHED_RATE_LIMITED,
    encode_payload,
)
from repro.skypeer.executor import execute_query
from repro.data.workload import Query

from .conftest import run


# ----------------------------------------------------------------------
# configuration
# ----------------------------------------------------------------------
class TestGatewayConfig:
    def test_defaults_are_sane(self):
        config = GatewayConfig()
        assert config.max_pending >= 1
        assert config.rate == 0.0  # unlimited by default
        assert config.dispatchers >= 1
        assert config.request_timeout > 0

    def test_from_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_MAX_PENDING", "7")
        monkeypatch.setenv("REPRO_SERVE_RATE", "12.5")
        monkeypatch.setenv("REPRO_SERVE_HOST", "127.0.0.9")
        config = GatewayConfig.from_env()
        assert config.max_pending == 7
        assert config.rate == 12.5
        assert config.host == "127.0.0.9"

    def test_explicit_overrides_beat_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_MAX_PENDING", "7")
        assert GatewayConfig.from_env(max_pending=3).max_pending == 3

    def test_rejects_nonsense(self):
        with pytest.raises(ValueError):
            GatewayConfig(max_pending=0)
        with pytest.raises(ValueError):
            GatewayConfig(rate=-1.0)
        with pytest.raises(ValueError):
            GatewayConfig(dispatchers=0)
        with pytest.raises(ValueError):
            GatewayConfig(request_timeout=0.0)

    def test_bad_env_value_names_the_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_PORT", "not-a-port")
        with pytest.raises(ValueError, match="REPRO_SERVE_PORT"):
            GatewayConfig.from_env()


class TestTokenBucket:
    def test_unlimited_when_rate_zero(self):
        bucket = TokenBucket(rate=0.0, burst=1, clock=lambda: 0.0)
        assert all(bucket.try_acquire() for _ in range(1000))

    def test_burst_then_refill(self):
        now = [0.0]
        bucket = TokenBucket(rate=1.0, burst=2, clock=lambda: now[0])
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert not bucket.try_acquire()  # burst exhausted, no time passed
        now[0] = 1.0  # one second = one token at rate 1/s
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_refill_caps_at_burst(self):
        now = [0.0]
        bucket = TokenBucket(rate=10.0, burst=3, clock=lambda: now[0])
        now[0] = 1000.0
        grabbed = sum(bucket.try_acquire() for _ in range(10))
        assert grabbed == 3


# ----------------------------------------------------------------------
# request handling over real sockets
# ----------------------------------------------------------------------
class TestGatewayRequests:
    def test_ping_stats_and_unknown_op(self, network):
        async def scenario():
            async with QueryGateway(network, config=GatewayConfig()) as gateway:
                host, port = gateway.address
                async with await GatewayClient.connect(host, port) as client:
                    pong = await client.ping()
                    stats = await client.stats()
                    bogus = await client.request({"op": "explode"})
            return pong, stats, bogus

        pong, stats, bogus = run(scenario())
        assert pong.payload["op"] == "pong"
        assert stats["requests"] >= 1
        assert bogus.status == "error" and "explode" in bogus.payload["error"]

    def test_malformed_subspace_is_an_error_not_a_drop(self, network):
        async def scenario():
            async with QueryGateway(network, config=GatewayConfig()) as gateway:
                host, port = gateway.address
                async with await GatewayClient.connect(host, port) as client:
                    empty = await client.request({"op": "query", "subspace": []})
                    out_of_range = await client.request(
                        {"op": "query", "subspace": [99]}
                    )
                    bad_variant = await client.request(
                        {"op": "query", "subspace": [0], "variant": "XXXX"}
                    )
                    # connection still usable after three bad requests
                    good = await client.query([0, 1])
            return empty, out_of_range, bad_variant, good, gateway.stats

        empty, out_of_range, bad_variant, good, stats = run(scenario())
        assert empty.status == "error"
        assert out_of_range.status == "error"
        assert bad_variant.status == "error"
        assert good.ok
        assert stats.protocol_errors == 3

    def test_result_matches_serial_execution(self, network):
        async def scenario():
            async with QueryGateway(network, config=GatewayConfig()) as gateway:
                host, port = gateway.address
                async with await GatewayClient.connect(host, port) as client:
                    return await client.query([0, 2], "FTPM")

        response = run(scenario())
        assert response.ok
        initiator = network.topology.superpeer_ids[0]
        serial = execute_query(
            network, Query(subspace=(0, 2), initiator=initiator), "FTPM"
        )
        assert response.payload["result"]["ids"] == serial.result.points.ids.tolist()

    def test_subspace_order_is_normalized_into_one_key(self, network):
        """[2, 0] and [0, 2] are the same query and must coalesce."""
        release = threading.Event()

        def dispatch(net, query, variant):
            release.wait(timeout=10.0)
            return execute_query(net, query, variant).result

        async def scenario():
            gateway = QueryGateway(
                network, config=GatewayConfig(dispatchers=1), dispatch=dispatch
            )
            async with gateway:
                host, port = gateway.address
                async with await GatewayClient.connect(host, port) as client:
                    first = asyncio.ensure_future(client.query([2, 0]))
                    await asyncio.sleep(0.1)
                    second = asyncio.ensure_future(client.query([0, 2]))
                    await asyncio.sleep(0.1)
                    release.set()
                    a, b = await asyncio.gather(first, second)
            return a, b, gateway.stats

        a, b, stats = run(scenario())
        assert a.ok and b.ok
        assert stats.executed == 1
        assert stats.coalesce_hits == 1
        assert encode_payload(a.payload["result"]) == encode_payload(
            b.payload["result"]
        )


class TestAdmissionControl:
    def test_rate_limit_sheds_explicitly(self, network):
        now = [0.0]
        config = GatewayConfig(rate=1.0, burst=1)

        async def scenario():
            gateway = QueryGateway(network, config=config, clock=lambda: now[0])
            async with gateway:
                host, port = gateway.address
                async with await GatewayClient.connect(host, port) as client:
                    first = await client.query([0])
                    second = await client.query([1])
            return first, second, gateway.stats

        first, second, stats = run(scenario())
        assert first.ok
        assert second.status == "shed"
        assert second.shed_reason == SHED_RATE_LIMITED
        assert stats.shed_rate_limited == 1

    def test_full_queue_sheds_explicitly(self, network):
        release = threading.Event()

        def dispatch(net, query, variant):
            release.wait(timeout=10.0)
            return execute_query(net, query, variant).result

        async def scenario():
            gateway = QueryGateway(
                network,
                config=GatewayConfig(max_pending=1, dispatchers=1),
                dispatch=dispatch,
            )
            async with gateway:
                host, port = gateway.address
                async with await GatewayClient.connect(host, port) as client:
                    running = asyncio.ensure_future(client.query([0]))
                    await asyncio.sleep(0.1)  # dispatcher takes it, blocks
                    queued = asyncio.ensure_future(client.query([1]))
                    await asyncio.sleep(0.1)  # fills the 1-slot queue
                    shed = await client.query([2])
                    release.set()
                    ok_a, ok_b = await asyncio.gather(running, queued)
            return ok_a, ok_b, shed, gateway.stats

        ok_a, ok_b, shed, stats = run(scenario())
        assert ok_a.ok and ok_b.ok
        assert shed.status == "shed"
        assert shed.shed_reason == SHED_QUEUE_FULL
        assert stats.shed_queue_full == 1
        assert stats.queue_depth_peak == 1

    def test_coalesced_waiters_do_not_consume_queue_slots(self, network):
        release = threading.Event()

        def dispatch(net, query, variant):
            release.wait(timeout=10.0)
            return execute_query(net, query, variant).result

        async def scenario():
            gateway = QueryGateway(
                network,
                config=GatewayConfig(max_pending=1, dispatchers=1),
                dispatch=dispatch,
            )
            async with gateway:
                host, port = gateway.address
                async with await GatewayClient.connect(host, port) as client:
                    first = asyncio.ensure_future(client.query([0]))
                    await asyncio.sleep(0.1)
                    # identical requests attach to the in-flight job
                    # instead of occupying the (full) queue
                    more = [asyncio.ensure_future(client.query([0])) for _ in range(5)]
                    await asyncio.sleep(0.1)
                    release.set()
                    responses = await asyncio.gather(first, *more)
            return responses, gateway.stats

        responses, stats = run(scenario())
        assert all(r.ok for r in responses)
        assert stats.coalesce_hits == 5
        assert stats.shed_queue_full == 0
        assert stats.executed == 1


class TestEngineStatsMirror:
    def test_gateway_counters_mirror_into_engine_stats(self, network):
        from repro.parallel import ParallelEngine

        async def scenario(engine):
            gateway = QueryGateway(
                network,
                engine=engine,
                backend="engine",
                config=GatewayConfig(dispatchers=2),
            )
            async with gateway:
                host, port = gateway.address
                async with await GatewayClient.connect(host, port) as client:
                    responses = await asyncio.gather(
                        *[client.query([0, 1]) for _ in range(4)]
                    )
            return responses, gateway.stats

        with ParallelEngine(2) as engine:
            responses, stats = run(scenario(engine))
            assert all(r.ok for r in responses)
            assert stats.coalesce_hits >= 1
            assert engine.stats.serve_coalesce_hits == stats.coalesce_hits
            assert engine.stats.serve_shed == stats.shed_total
            serve_fields = engine.stats.as_dict()
            assert "serve_coalesce_hits" in serve_fields
            assert "serve_queue_depth_peak" in serve_fields


class TestUpdateOp:
    """The ``update`` admin op: live mutations through the gateway."""

    def test_serial_backend_applies_insert_and_bumps_epoch(self):
        from .conftest import build_network

        network = build_network(seed=29)
        peer_id = sorted(network.peers)[0]
        size_before = len(network.peers[peer_id].data)
        epoch_before = network.epoch

        async def scenario():
            async with QueryGateway(network, config=GatewayConfig()) as gateway:
                host, port = gateway.address
                async with await GatewayClient.connect(host, port) as client:
                    rows = [[0.5] * network.dimensionality, [0.6] * network.dimensionality]
                    response = await client.update(
                        "insert", peer_id=peer_id, points=rows
                    )
            return response, gateway.stats

        response, stats = run(scenario())
        assert response.ok, response.payload
        report = response.payload["update"]
        assert report["kind"] == "insert"
        assert report["epoch"] == network.epoch == epoch_before + 1
        assert report["touched_superpeers"] == [
            network.topology.superpeer_of_peer(peer_id)
        ]
        assert report["republished_bytes"] == 0  # serial: nothing published
        assert len(network.peers[peer_id].data) == size_before + 2
        assert stats.updates == stats.updates_applied == 1

    def test_server_side_random_points_and_delete(self):
        from .conftest import build_network

        network = build_network(seed=31)
        peer_id = sorted(network.peers)[0]

        async def scenario():
            async with QueryGateway(network, config=GatewayConfig()) as gateway:
                host, port = gateway.address
                async with await GatewayClient.connect(host, port) as client:
                    inserted = await client.update(
                        "insert", peer_id=peer_id,
                        points={"random": 3, "seed": 5},
                    )
                    doomed = [int(i) for i in network.peers[peer_id].data.ids[:2]]
                    deleted = await client.update(
                        "delete", peer_id=peer_id, point_ids=doomed
                    )
            return inserted, deleted

        inserted, deleted = run(scenario())
        assert inserted.ok and deleted.ok
        assert deleted.payload["update"]["kind"] == "delete"

    def test_join_and_fail_round_trip(self):
        from .conftest import build_network

        network = build_network(seed=37)
        superpeer_id = sorted(network.superpeers)[0]
        peers_before = set(network.peers)

        async def scenario():
            async with QueryGateway(network, config=GatewayConfig()) as gateway:
                host, port = gateway.address
                async with await GatewayClient.connect(host, port) as client:
                    joined = await client.update(
                        "join", superpeer_id=superpeer_id,
                        points={"random": 4, "seed": 9},
                    )
                    new_peer = (set(network.peers) - peers_before).pop()
                    failed = await client.update("fail", peer_id=new_peer)
            return joined, failed

        joined, failed = run(scenario())
        assert joined.ok and failed.ok
        assert set(network.peers) == peers_before

    def test_malformed_updates_are_errors_not_mutations(self):
        from .conftest import build_network

        network = build_network(seed=41)
        epoch_before = network.epoch

        async def scenario():
            async with QueryGateway(network, config=GatewayConfig()) as gateway:
                host, port = gateway.address
                async with await GatewayClient.connect(host, port) as client:
                    bad_kind = await client.update("shuffle")
                    no_target = await client.update("insert", points=[[0.1, 0.2, 0.3, 0.4]])
                    bad_points = await client.update(
                        "insert", peer_id=sorted(network.peers)[0], points="nope"
                    )
                    unknown_peer = await client.update(
                        "insert", peer_id=10**6, points={"random": 1}
                    )
            return bad_kind, no_target, bad_points, unknown_peer, gateway.stats

        bad_kind, no_target, bad_points, unknown_peer, stats = run(scenario())
        for response in (bad_kind, no_target, bad_points):
            assert response.status == "error", response.payload
        assert unknown_peer.status == "error"
        assert network.epoch == epoch_before
        assert stats.updates == 4
        assert stats.updates_applied == 0

    def test_post_update_queries_do_not_coalesce_with_stale_jobs(self):
        from .conftest import build_network

        network = build_network(seed=43)

        async def scenario():
            async with QueryGateway(network, config=GatewayConfig()) as gateway:
                host, port = gateway.address
                async with await GatewayClient.connect(host, port) as client:
                    first = await client.query([0, 1])
                    await client.update(
                        "insert", peer_id=sorted(network.peers)[0],
                        points={"random": 2, "seed": 3},
                    )
                    second = await client.query([0, 1])
            return first, second, gateway.stats

        first, second, stats = run(scenario())
        assert first.ok and second.ok
        # Distinct epochs => distinct coalescing keys => both executed.
        assert stats.executed == 2
        assert stats.coalesce_hits == 0
