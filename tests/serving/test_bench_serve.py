"""The open-loop serving bench (``skypeer bench --serve``) and ``skypeer serve``.

Small-parameter end-to-end runs: the standalone serving bench emits a
schema-4 document whose verdicts the regression gate accepts, the CLI
wires ``--serve`` through to it, and ``skypeer serve`` stands up a real
gateway that answers queries until its ``--duration`` elapses.
"""

from __future__ import annotations

import json
import pathlib
import subprocess
import sys
import threading
import time

import pytest

from repro.bench.smoke import SMOKE_SCHEMA, bench_serving
from repro.cli import main as cli_main
from repro.serving.client import GatewayClient

from .conftest import run

REPO = pathlib.Path(__file__).resolve().parents[2]

# Open-loop runs spin a pool and replay full request schedules: allow
# well beyond CI's per-test --timeout default.
pytestmark = pytest.mark.timeout(900)

BENCH_KWARGS = dict(
    scale="tiny", workers=2, concurrency=8, requests=32, rate=300.0
)


@pytest.fixture(scope="module")
def report():
    """One small open-loop run shared across assertions (spins a pool)."""
    return bench_serving(**BENCH_KWARGS)


class TestBenchServing:
    def test_schema_and_verdicts(self, report):
        assert report["schema"] == SMOKE_SCHEMA
        assert report["sweep"] == "serving-open-loop"
        serving = report["serving"]
        assert serving["results_match"] is True
        assert serving["coalesce_hits"] > 0
        load = serving["load"]
        assert load["offered"] == BENCH_KWARGS["requests"]
        assert load["ok"] + load["shed"] + load["errors"] == load["offered"]
        for q in ("p50", "p90", "p99"):
            assert load["latency_seconds"][q] >= 0.0

    def test_regression_gate_accepts_the_report(self, report, tmp_path):
        path = tmp_path / "BENCH_serve.json"
        path.write_text(json.dumps(report))
        proc = subprocess.run(
            [sys.executable, str(REPO / "benchmarks" / "check_regression.py"),
             str(path), "--baseline", str(path)],
            capture_output=True, text=True, timeout=60,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "serving" in proc.stdout

    def test_regression_gate_rejects_divergence(self, report, tmp_path):
        broken = json.loads(json.dumps(report))
        broken["serving"]["results_match"] = False
        path = tmp_path / "BENCH_broken.json"
        path.write_text(json.dumps(broken))
        proc = subprocess.run(
            [sys.executable, str(REPO / "benchmarks" / "check_regression.py"),
             str(path), "--baseline", str(path)],
            capture_output=True, text=True, timeout=60,
        )
        assert proc.returncode != 0


class TestCliBenchServe:
    def test_bench_serve_writes_schema_4_json(self, tmp_path, capsys):
        path = tmp_path / "BENCH_cli_serve.json"
        code = cli_main([
            "bench", "--serve", "--scale", "tiny", "--workers", "2",
            "--concurrency", "8", "--requests", "24", "--rate", "300",
            "--json", str(path),
        ])
        capsys.readouterr()
        assert code == 0
        loaded = json.loads(path.read_text())
        assert loaded["schema"] == SMOKE_SCHEMA
        assert loaded["serving"]["results_match"] is True


class TestCliServe:
    def test_serve_answers_queries_until_duration(self, tmp_path, capsys):
        port_file = tmp_path / "gateway.addr"
        argv = [
            "serve", "--peers", "9", "--points-per-peer", "8", "--dims", "4",
            "--backend", "serial", "--duration", "6",
            "--port-file", str(port_file),
        ]
        codes: list[int] = []
        server = threading.Thread(target=lambda: codes.append(cli_main(argv)))
        server.start()
        try:
            deadline = time.monotonic() + 10.0
            while not port_file.exists() and time.monotonic() < deadline:
                time.sleep(0.05)
            assert port_file.exists(), "serve never wrote its port file"
            host, port = port_file.read_text().split()

            async def scenario():
                async with await GatewayClient.connect(host, int(port)) as client:
                    pong = await client.ping()
                    result = await client.query([0, 1])
                return pong, result

            pong, result = run(scenario())
            assert pong.payload["op"] == "pong"
            assert result.ok
            assert result.payload["result"]["ids"]
        finally:
            server.join(timeout=30.0)
        capsys.readouterr()
        assert codes == [0]
        assert not server.is_alive()
