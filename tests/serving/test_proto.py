"""Protocol codec: canonical encoding, decode errors, payload shapes."""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dataset import PointSet
from repro.core.store import SortedByF
from repro.serving.proto import (
    ProtocolError,
    decode_payload,
    encode_payload,
    error_payload,
    ok_payload,
    result_payload,
    shed_payload,
)


class TestCanonicalEncoding:
    def test_key_order_does_not_change_bytes(self):
        a = encode_payload({"b": 1, "a": 2})
        b = encode_payload({"a": 2, "b": 1})
        assert a == b

    def test_no_whitespace(self):
        blob = encode_payload({"x": [1, 2], "y": "z"})
        assert b" " not in blob

    @settings(max_examples=50, deadline=None)
    @given(
        payload=st.dictionaries(
            st.text(max_size=8),
            st.one_of(st.integers(), st.floats(allow_nan=False), st.text(max_size=8)),
            max_size=5,
        )
    )
    def test_roundtrip_and_determinism(self, payload):
        blob = encode_payload(payload)
        assert decode_payload(blob) == payload
        # shuffled key insertion order yields identical bytes
        assert encode_payload(dict(reversed(list(payload.items())))) == blob


class TestDecodeErrors:
    def test_rejects_garbage(self):
        with pytest.raises(ProtocolError, match="undecodable"):
            decode_payload(b"\xff\xfe not json")

    def test_rejects_non_object(self):
        with pytest.raises(ProtocolError, match="expected a JSON object"):
            decode_payload(b"[1,2,3]")

    def test_rejects_invalid_utf8(self):
        with pytest.raises(ProtocolError):
            decode_payload(b'"\xc3"')


class TestPayloads:
    def _store(self):
        values = np.array([[0.1, 0.2], [0.3, 0.1]])
        points = PointSet(values, np.array([7, 9]))
        return SortedByF(points, values.sum(axis=1))

    def test_result_payload_is_json_native(self):
        payload = result_payload(self._store())
        # np.int64 / np.float64 must not leak into the payload
        blob = json.dumps(payload)
        assert json.loads(blob)["ids"] == [7, 9]

    def test_ok_payload_shape(self):
        payload = ok_payload(self._store(), 0.25)
        assert payload["status"] == "ok"
        assert payload["elapsed_seconds"] == 0.25
        assert set(payload["result"]) == {"ids", "values", "f"}

    def test_shed_and_error_payloads(self):
        assert shed_payload("queue_full") == {"status": "shed", "reason": "queue_full"}
        assert error_payload("boom") == {"status": "error", "error": "boom"}
