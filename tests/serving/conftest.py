"""Shared fixtures for the serving suite: a small network, tiny configs."""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.core.dataset import PointSet
from repro.p2p.network import SuperPeerNetwork
from repro.p2p.topology import Topology


def build_network(seed: int = 11, d: int = 4) -> SuperPeerNetwork:
    rng = np.random.default_rng(seed)
    topo = Topology.generate(n_peers=9, n_superpeers=3, degree=3.0, seed=seed)
    partitions = {}
    next_id = 0
    for peers in topo.peers_of.values():
        for pid in peers:
            partitions[pid] = PointSet(
                rng.random((12, d)), np.arange(next_id, next_id + 12)
            )
            next_id += 12
    return SuperPeerNetwork.from_partitions(topo, partitions)


@pytest.fixture(scope="module")
def network() -> SuperPeerNetwork:
    return build_network()


def run(coro):
    return asyncio.run(coro)
