"""Fault injection: every failure ends in a clean frame or a drop, never a hang.

Each scenario runs under ``asyncio.wait_for`` so a regression that
introduces a hang fails fast instead of wedging the suite.  The four
injected faults are the ones the gateway was designed around:

* a client disconnecting mid-frame,
* a slow-loris client dangling half a frame past the read deadline,
* the backend worker pool dying out from under an admitted query,
* shutdown arriving while requests are still queued or in flight.
"""

from __future__ import annotations

import asyncio
import signal
import threading

from repro.p2p.transport import encode_frame
from repro.serving.client import GatewayClient
from repro.serving.gateway import GatewayConfig, QueryGateway
from repro.serving.proto import SHED_SHUTDOWN, encode_payload
from repro.skypeer.executor import execute_query

from .conftest import run

TIMEOUT = 20.0


def bounded(coro):
    return asyncio.wait_for(coro, timeout=TIMEOUT)


class TestClientFaults:
    def test_mid_frame_disconnect_is_counted_and_contained(self, network):
        async def scenario():
            async with QueryGateway(network, config=GatewayConfig()) as gateway:
                host, port = gateway.address
                reader, writer = await asyncio.open_connection(host, port)
                frame = encode_frame(encode_payload({"op": "ping", "id": 1}))
                writer.write(frame[: len(frame) - 3])  # cut inside the payload
                await writer.drain()
                writer.close()
                await writer.wait_closed()
                await asyncio.sleep(0.1)
                # the gateway is unharmed: a fresh client gets served
                async with await GatewayClient.connect(host, port) as client:
                    good = await client.query([0, 1])
            return good, gateway.stats

        good, stats = run(bounded(scenario()))
        assert good.ok
        assert stats.midframe_disconnects == 1

    def test_slow_loris_client_is_dropped(self, network):
        config = GatewayConfig(request_timeout=0.2)

        async def scenario():
            async with QueryGateway(network, config=config) as gateway:
                host, port = gateway.address
                reader, writer = await asyncio.open_connection(host, port)
                frame = encode_frame(encode_payload({"op": "ping", "id": 1}))
                writer.write(frame[:3])  # dangle a partial frame forever
                await writer.drain()
                # the gateway must hang up on us, not wait indefinitely
                eof = await asyncio.wait_for(reader.read(), timeout=TIMEOUT)
                writer.close()
                await writer.wait_closed()
                # and keep serving well-behaved clients
                async with await GatewayClient.connect(host, port) as client:
                    good = await client.query([0, 1])
            return eof, good, gateway.stats

        eof, good, stats = run(bounded(scenario()))
        assert eof == b""  # server closed the connection
        assert good.ok
        assert stats.slow_client_drops == 1

    def test_waiting_on_a_slow_response_is_not_slow_loris(self, network):
        """An idle-but-waiting client must NOT be dropped by the read deadline."""
        release = threading.Event()

        def dispatch(net, query, variant):
            release.wait(timeout=10.0)
            return execute_query(net, query, variant).result

        config = GatewayConfig(request_timeout=0.2)

        async def scenario():
            gateway = QueryGateway(network, config=config, dispatch=dispatch)
            async with gateway:
                host, port = gateway.address
                async with await GatewayClient.connect(host, port) as client:
                    pending = asyncio.ensure_future(client.query([0, 1]))
                    await asyncio.sleep(1.0)  # 5x the read deadline
                    release.set()
                    response = await pending
            return response, gateway.stats

        response, stats = run(bounded(scenario()))
        assert response.ok
        assert stats.slow_client_drops == 0

    def test_all_waiters_disconnecting_abandons_the_job(self, network):
        """A queued job whose clients all left is reaped, not executed."""
        calls = []
        release = threading.Event()

        def dispatch(net, query, variant):
            calls.append(tuple(query.subspace))
            release.wait(timeout=10.0)
            return execute_query(net, query, variant).result

        async def scenario():
            gateway = QueryGateway(
                network,
                config=GatewayConfig(dispatchers=1),
                dispatch=dispatch,
            )
            async with gateway:
                host, port = gateway.address
                blocker = await GatewayClient.connect(host, port)
                hold = asyncio.ensure_future(blocker.query([0]))
                await asyncio.sleep(0.1)  # dispatcher now blocked on [0]
                leaver = await GatewayClient.connect(host, port)
                doomed = asyncio.ensure_future(leaver.query([1]))
                await asyncio.sleep(0.1)  # [1] sits in the queue
                await leaver.close()  # ...and its only waiter leaves
                doomed.cancel()
                await asyncio.sleep(0.1)
                release.set()
                held = await hold
                await blocker.close()
            return held, gateway.stats

        held, stats = run(bounded(scenario()))
        assert held.ok
        assert calls == [(0,)]  # the abandoned (1,) job never executed
        assert stats.cancelled_jobs == 1


class TestBackendFaults:
    def test_backend_exception_becomes_an_error_frame(self, network):
        def dispatch(net, query, variant):
            raise RuntimeError("backend worker died mid-query")

        async def scenario():
            gateway = QueryGateway(network, dispatch=dispatch)
            async with gateway:
                host, port = gateway.address
                async with await GatewayClient.connect(host, port) as client:
                    return await client.query([0, 1]), gateway.stats

        response, stats = run(bounded(scenario()))
        assert response.status == "error"
        assert "backend worker died" in response.payload["error"]
        assert stats.backend_errors == 1

    def test_real_worker_death_surfaces_as_error_not_hang(self, network):
        """Kill the engine's pool workers; queries get error frames."""
        from repro.parallel import ParallelEngine

        engine = ParallelEngine(2)
        try:
            for pid in list(engine._pool._processes):
                import os

                os.kill(pid, signal.SIGKILL)

            async def scenario():
                gateway = QueryGateway(network, engine=engine, backend="engine")
                async with gateway:
                    host, port = gateway.address
                    async with await GatewayClient.connect(host, port) as client:
                        return await client.query([0, 1]), gateway.stats

            response, stats = run(bounded(scenario()))
            assert response.status == "error"
            assert stats.backend_errors == 1
        finally:
            engine.close()
            engine.close()  # idempotent even after a pool break
        assert engine.published_segments() == []


class TestShutdownFaults:
    def test_shutdown_with_queued_requests_sheds_cleanly(self, network):
        release = threading.Event()

        def dispatch(net, query, variant):
            release.wait(timeout=10.0)
            return execute_query(net, query, variant).result

        async def scenario():
            gateway = QueryGateway(
                network,
                config=GatewayConfig(dispatchers=1, shutdown_timeout=0.5),
                dispatch=dispatch,
            )
            host, port = await gateway.start()
            client = await GatewayClient.connect(host, port)
            running = asyncio.ensure_future(client.query([0]))
            await asyncio.sleep(0.1)  # dispatcher blocked on [0]
            queued = [asyncio.ensure_future(client.query([d])) for d in (1, 2, 3)]
            await asyncio.sleep(0.1)  # three jobs sit in the queue
            closer = asyncio.ensure_future(gateway.close())
            await asyncio.sleep(0.1)
            release.set()  # let the blocked dispatch finish during close
            await closer
            responses = await asyncio.gather(
                running, *queued, return_exceptions=True
            )
            await client.close()
            return responses, gateway.stats

        responses, stats = run(bounded(scenario()))
        # every request resolved: a response frame or a clean connection error
        for response in responses:
            assert not isinstance(response, asyncio.TimeoutError)
        frames = [r for r in responses if not isinstance(r, Exception)]
        shed = [r for r in frames if r.status == "shed"]
        assert len(shed) >= 3  # the queued jobs were shed, not executed
        assert all(r.shed_reason == SHED_SHUTDOWN for r in shed)
        assert stats.shed_shutdown >= 3

    def test_double_close_and_close_without_start(self, network):
        async def scenario():
            gateway = QueryGateway(network)
            await gateway.close()  # never started: still clean
            await gateway.close()
            started = QueryGateway(network)
            await started.start()
            await started.close()
            await started.close()
            return gateway.closed, started.closed

        a, b = run(bounded(scenario()))
        assert a and b

    def test_requests_after_close_are_refused_cleanly(self, network):
        async def scenario():
            gateway = QueryGateway(network)
            host, port = await gateway.start()
            client = await GatewayClient.connect(host, port)
            ok = await client.query([0, 1])
            await gateway.close()
            try:
                late = await bounded(client.query([0, 1]))
            except (ConnectionError, OSError) as exc:
                late = exc
            await client.close()
            return ok, late

        ok, late = run(bounded(scenario()))
        assert ok.ok
        # a closed gateway either sheds or the connection is gone —
        # both are clean, immediate outcomes
        if not isinstance(late, Exception):
            assert late.status == "shed"

    def test_no_lingering_tasks_or_sockets_after_close(self, network):
        async def scenario():
            gateway = QueryGateway(network, config=GatewayConfig(dispatchers=3))
            host, port = await gateway.start()
            clients = [await GatewayClient.connect(host, port) for _ in range(4)]
            await asyncio.gather(*[c.query([0, 1]) for c in clients])
            await gateway.close()
            for client in clients:
                await client.close()
            await asyncio.sleep(0)
            leftovers = [
                t for t in asyncio.all_tasks()
                if t is not asyncio.current_task() and not t.done()
            ]
            return leftovers, gateway._connections

        # no bounded() wrapper: wait_for's own task would appear in
        # all_tasks() and spoil the leftover check
        leftovers, connections = run(scenario())
        assert leftovers == []
        assert connections == set()


class TestEpochRaces:
    """Live updates racing coalesced queries: old epoch or new, never torn."""

    def test_update_racing_coalesced_queries_never_torn(self):
        import json

        from repro.data.workload import Query
        from repro.parallel import ParallelEngine
        from repro.parallel.shm import shm_supported
        from repro.serving.proto import result_payload
        from repro.skypeer.variants import Variant

        from .conftest import build_network

        network = build_network(seed=23)
        engine = ParallelEngine(2, use_shm=shm_supported())
        subspace = (0, 1, 2)

        def serial_snapshot() -> str:
            # Only called while the network is quiescent (the update's
            # response frame has arrived, the next one is not yet sent),
            # so this serial read cannot race a mutation.
            query = Query(
                subspace=subspace, initiator=network.topology.superpeer_ids[0]
            )
            store = execute_query(network, query, Variant.FTPM).result
            return json.dumps(result_payload(store), sort_keys=True)

        async def scenario():
            legal: set[str] = set()
            responses = []
            config = GatewayConfig(dispatchers=2)
            async with QueryGateway(network, engine=engine, config=config) as gateway:
                host, port = gateway.address
                clients = [
                    await GatewayClient.connect(host, port) for _ in range(3)
                ]
                warm = await clients[0].query(subspace)
                assert warm.ok
                legal.add(serial_snapshot())
                peer_id = sorted(network.peers)[0]
                for round_no in range(3):
                    # Queries take off first, then the update lands while
                    # they are mid-coalesce/mid-dispatch.
                    tasks = [
                        asyncio.ensure_future(client.query(subspace))
                        for client in clients
                        for _ in range(2)
                    ]
                    update = await clients[0].update(
                        "insert", peer_id=peer_id,
                        points={"random": 2, "seed": round_no},
                    )
                    assert update.ok, update.payload
                    legal.add(serial_snapshot())
                    responses.extend(await asyncio.gather(*tasks))
                for client in clients:
                    await client.close()
            return legal, responses, gateway.stats

        try:
            legal, responses, stats = run(bounded(scenario()))
        finally:
            engine.close()
        assert stats.updates_applied == 3
        for response in responses:
            assert response.ok, response.payload
            snapshot = json.dumps(response.payload["result"], sort_keys=True)
            assert snapshot in legal, "torn response: matches no epoch"

    def test_update_during_shutdown_is_shed_not_applied(self, network):
        epoch_before = network.epoch

        async def scenario():
            gateway = QueryGateway(network, config=GatewayConfig())
            written: list[dict] = []

            async def capture(conn, payload):
                written.append(payload)

            gateway._write = capture
            gateway._closing = True  # shutdown racing the update frame
            await gateway._serve_update(
                None,
                {
                    "kind": "insert",
                    "peer_id": sorted(network.peers)[0],
                    "points": {"random": 1, "seed": 0},
                },
                7,
            )
            return written, gateway.stats

        written, stats = run(bounded(scenario()))
        assert written == [{"status": "shed", "reason": SHED_SHUTDOWN, "id": 7}]
        assert stats.updates == 1
        assert stats.updates_applied == 0
        assert network.epoch == epoch_before  # the mutation never ran
