"""Regression: the harness's memoized networks are read-only in practice.

``bench.harness._NETWORK_CACHE`` shares one pre-processed
``SuperPeerNetwork`` across every variant of a figure sweep (and across
sweeps with equal configs).  Nothing may mutate it — not a variant, not
a repeat run, and in particular not the observability instrumentation —
otherwise later sweeps silently measure a different network.  These
tests pin that down by comparing raw result bytes across repeated runs.
"""

from __future__ import annotations

import numpy as np

from repro.bench.config import ExperimentConfig
from repro.bench.harness import build_network, clear_network_cache, make_queries
from repro.obs import observed
from repro.skypeer.executor import execute_query
from repro.skypeer.variants import Variant

CONFIG = ExperimentConfig(
    n_peers=8, points_per_peer=12, dimensionality=4,
    query_dimensionality=2, seed=31,
)


def _result_fingerprint(network, queries) -> dict:
    """Byte-exact outcome of every (query, variant) pair."""
    fingerprint = {}
    for qi, query in enumerate(queries):
        for variant in Variant:
            run = execute_query(network, query, variant)
            fingerprint[(qi, variant)] = (
                run.result.points.values.tobytes(),
                run.result.points.ids.tobytes(),
                run.result.f.tobytes(),
                run.comparisons,
                run.volume_bytes,
                run.message_count,
                run.critical_path_examined,
            )
    return fingerprint


def _network_fingerprint(network) -> dict:
    stores = {
        sp: (
            network.store_of(sp).points.values.tobytes(),
            network.store_of(sp).points.ids.tobytes(),
            network.store_of(sp).f.tobytes(),
        )
        for sp in network.topology.superpeer_ids
    }
    return {"epoch": network.epoch, "stores": stores}


def test_cached_network_yields_byte_identical_results_across_runs():
    clear_network_cache()
    try:
        network = build_network(CONFIG)
        assert build_network(CONFIG) is network  # memoized
        queries = make_queries(network, CONFIG, n_queries=3)
        before_state = _network_fingerprint(network)
        first = _result_fingerprint(network, queries)
        second = _result_fingerprint(build_network(CONFIG), queries)
        assert first == second
        assert _network_fingerprint(network) == before_state
    finally:
        clear_network_cache()


def test_instrumented_runs_do_not_mutate_the_cached_network():
    clear_network_cache()
    try:
        network = build_network(CONFIG)
        queries = make_queries(network, CONFIG, n_queries=2)
        baseline = _result_fingerprint(network, queries)
        state = _network_fingerprint(network)
        with observed() as (tracer, metrics):
            traced = _result_fingerprint(build_network(CONFIG), queries)
        assert len(tracer) > 0 and len(metrics) > 0
        assert traced == baseline
        assert _network_fingerprint(network) == state
        # And a post-observation run still matches, byte for byte.
        assert _result_fingerprint(network, queries) == baseline
    finally:
        clear_network_cache()


def test_cache_key_isolation_between_configs():
    clear_network_cache()
    try:
        network = build_network(CONFIG)
        other = build_network(
            ExperimentConfig(
                n_peers=8, points_per_peer=12, dimensionality=4,
                query_dimensionality=2, seed=32,
            )
        )
        assert other is not network
        assert not np.array_equal(
            network.all_points().values, other.all_points().values
        )
    finally:
        clear_network_cache()
