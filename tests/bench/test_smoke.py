"""The machine-readable perf baseline (``skypeer bench --smoke``)."""

from __future__ import annotations

import json

import pytest

from repro.bench.smoke import DETERMINISTIC_FIELDS, SMOKE_SCHEMA, bench_smoke, write_bench_smoke
from repro.cli import main as cli_main


# The smoke fixture and the standalone churn run each spin up worker
# pools and replay whole benchmark sweeps: give them a deadline well
# beyond CI's per-test --timeout default.
pytestmark = pytest.mark.timeout(900)


@pytest.fixture(scope="module")
def report():
    """One micro smoke run shared across assertions (it spins a pool)."""
    return bench_smoke(scale="tiny", workers=2, dims=[5], variants=["FTPM"])


def test_schema_and_shape(report):
    assert report["schema"] == SMOKE_SCHEMA
    assert report["sweep"] == "fig3b-dimensionality"
    assert report["scale"] == "tiny"
    assert report["workers"] == 2
    assert report["dimensions"] == [5]
    assert report["serial_wall_seconds"] > 0
    assert report["parallel_wall_seconds"] > 0
    assert report["speedup"] > 0
    assert isinstance(report["cpu_count"], int)


def test_parallel_matches_serial(report):
    assert report["parallel_matches_serial"] is True
    assert report["mismatched_fields"] == []


def test_per_variant_means_present(report):
    means = report["variants"]["FTPM"]
    for field in (
        "mean_computational_time",
        "mean_total_time",
        "mean_volume_kb",
        "mean_messages",
        "mean_comparisons",
        "mean_critical_path_examined",
    ):
        assert field in means
    per_dim = report["per_dimension"]["5"]["FTPM"]
    for field in DETERMINISTIC_FIELDS:
        assert field in per_dim


def test_serving_section_present_and_passing(report):
    serving = report["serving"]
    assert serving["results_match"] is True
    assert serving["mismatched_subspaces"] == []
    assert serving["coalesce_hits"] > 0
    assert 0.0 < serving["coalesce_hit_rate"] <= 1.0
    load = serving["load"]
    assert load["ok"] + load["shed"] + load["errors"] == load["offered"]
    assert load["responses_consistent"] is True
    for q in ("p50", "p90", "p99"):
        assert load["latency_seconds"][q] >= 0.0


def test_degraded_parallelism_flag(report):
    import os

    assert report["degraded_parallelism"] is ((os.cpu_count() or 1) < 2)


def test_kernels_salsa_section(report):
    salsa = report["kernels"]["salsa"]
    assert salsa["identical"] is True
    assert salsa["terminates_early"] is True
    assert tuple(salsa["pivot_subspace"]) == (0, 1)
    assert salsa["min_skip_fraction"] == pytest.approx(0.20)
    assert salsa["cells"]
    for cell in salsa["cells"]:
        assert cell["identical"] is True
        cpp = cell["comparisons_per_point"]
        assert set(cpp) == {"sorted", "bbs", "salsa"}
        assert 0.0 <= cell["skipped_fraction"] <= 1.0
        if cell["distribution"] == "correlated":
            # The acceptance gate: ≥ 20 % of points skipped and strictly
            # fewer comparisons than the sorted scan on correlated cells.
            assert cell["terminates_early"] is True
            assert cell["skipped_fraction"] >= 0.20
            assert cpp["salsa"] < cpp["sorted"]


def test_kernels_identity_verdict_includes_salsa(report):
    # The rolled-up kernels.identical verdict folds the salsa section
    # in: it cannot be true while the salsa gate is false.
    if report["kernels"]["identical"]:
        assert report["kernels"]["salsa"]["identical"] is True


def test_incremental_section_identical_at_every_cell(report):
    incremental = report["incremental"]
    assert incremental["identical"] is True
    assert incremental["delta_bounded"] is True
    assert incremental["exercised"] is True
    assert incremental["cells"]
    for cell in incremental["cells"]:
        assert cell["identical"] is True
        assert cell["delta_bounded"] is True
        assert len(cell["ops"]) == incremental["ops_per_cell"]


def test_incremental_deltas_scale_with_the_touched_slot(report):
    incremental = report["incremental"]
    if not incremental["shm"]:
        pytest.skip("snapshot mode: every op is an honest full republish")
    saw_incremental = False
    for cell in incremental["cells"]:
        for op in cell["ops"]:
            if op["full_republish"]:
                continue
            saw_incremental = True
            assert op["republished_bytes"] <= op["slot_nbytes"]
            assert op["republished_bytes"] < op["total_nbytes"]
            assert op["touched_superpeers"]
    assert saw_incremental


def test_bench_churn_standalone_report():
    from repro.bench.smoke import bench_churn

    churn = bench_churn(scale="tiny", workers=2)
    assert churn["schema"] == SMOKE_SCHEMA
    assert churn["sweep"] == "incremental-churn-grid"
    assert churn["incremental"]["identical"] is True
    assert churn["incremental"]["delta_bounded"] is True


def test_report_is_json_serializable(report, tmp_path):
    path = tmp_path / "BENCH_test.json"
    write_bench_smoke(str(path), report)
    loaded = json.loads(path.read_text())
    assert loaded["schema"] == SMOKE_SCHEMA
    assert loaded["parallel_matches_serial"] is True


def test_cli_bench_requires_smoke(capsys):
    assert cli_main(["bench"]) == 2
    assert "--smoke" in capsys.readouterr().err
