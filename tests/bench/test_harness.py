"""Unit tests for the benchmark harness."""

import pytest

from repro.bench.config import ExperimentConfig
from repro.bench.harness import (
    VariantStats,
    build_network,
    clear_network_cache,
    make_queries,
    run_queries,
)
from repro.skypeer.executor import execute_query
from repro.skypeer.variants import Variant

TINY = ExperimentConfig(n_peers=12, points_per_peer=10, dimensionality=4)


class TestBuildNetwork:
    def test_builds_and_preprocesses(self):
        clear_network_cache()
        net = build_network(TINY)
        assert net.preprocessing is not None
        assert net.n_peers == 12

    def test_cache_returns_same_object(self):
        clear_network_cache()
        a = build_network(TINY)
        b = build_network(TINY)
        assert a is b

    def test_cache_bypass(self):
        clear_network_cache()
        a = build_network(TINY)
        b = build_network(TINY, use_cache=False)
        assert a is not b

    def test_different_configs_different_networks(self):
        clear_network_cache()
        a = build_network(TINY)
        b = build_network(ExperimentConfig(n_peers=12, points_per_peer=10, dimensionality=5))
        assert a is not b


class TestQueries:
    def test_make_queries_respects_k(self):
        net = build_network(TINY)
        queries = make_queries(net, TINY, 7)
        assert len(queries) == 7
        assert all(q.k == TINY.query_dimensionality for q in queries)

    def test_queries_deterministic(self):
        net = build_network(TINY)
        assert make_queries(net, TINY, 5) == make_queries(net, TINY, 5)

    def test_run_queries_aggregates(self):
        net = build_network(TINY)
        queries = make_queries(net, TINY, 3)
        stats = run_queries(net, queries, [Variant.FTPM, "naive"])
        assert set(stats) == {Variant.FTPM, Variant.NAIVE}
        for vs in stats.values():
            assert vs.queries == 3
            assert vs.mean_total_time >= vs.mean_computational_time
            assert vs.mean_volume_kb >= 0


class TestVariantStats:
    def test_from_executions(self):
        net = build_network(TINY)
        queries = make_queries(net, TINY, 2)
        runs = [execute_query(net, q, Variant.FTFM) for q in queries]
        vs = VariantStats.from_executions(Variant.FTFM, runs)
        assert vs.queries == 2
        assert vs.mean_result_size > 0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            VariantStats.from_executions(Variant.FTFM, [])
