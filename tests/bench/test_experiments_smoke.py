"""Every figure experiment runs at tiny scale and has the right shape.

These are integration tests for the bench layer; the quantitative
paper-shape assertions live in benchmarks/ where the scale is larger.
"""

import pytest

from repro.bench import EXPERIMENTS, run_experiment
from repro.bench.report import ResultTable

pytestmark = pytest.mark.slow


@pytest.mark.parametrize("experiment_id", sorted(EXPERIMENTS))
def test_experiment_runs_at_tiny_scale(experiment_id):
    table = run_experiment(experiment_id, "tiny")
    assert isinstance(table, ResultTable)
    assert table.rows, experiment_id
    assert table.experiment == experiment_id
    # every row provides every column or an explicit None
    for row in table.rows:
        assert set(row) <= set(table.columns)
    # renders without blowing up
    assert table.to_text()
    assert table.to_markdown()


def test_unknown_experiment():
    with pytest.raises(ValueError, match="unknown experiment"):
        run_experiment("fig9z")


def test_fig3a_selectivity_monotone():
    table = run_experiment("fig3a", "tiny")
    sel_p = table.column("SEL_p %")
    assert sel_p == sorted(sel_p)
    sel_sp = table.column("SEL_sp %")
    for p, sp in zip(sel_p, sel_sp):
        assert sp <= p


def test_fig3d_progressive_merging_ships_less():
    table = run_experiment("fig3d", "tiny")
    for k in (2, 3):
        for fm, pm in zip(table.column(f"FTFM k={k}"), table.column(f"FTPM k={k}")):
            assert pm <= fm


def test_fig3c_progressive_merging_fastest_total():
    """PM never loses by more than wall-clock jitter at tiny scale;
    the strict (large-scale) shape assertions live in benchmarks/."""
    table = run_experiment("fig3c", "tiny")
    for row in table.rows:
        assert row["FTPM"] <= row["FTFM"] * 1.10
        assert row["RTPM"] <= row["RTFM"] * 1.10
