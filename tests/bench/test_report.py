"""Unit tests for the result-table renderer."""

import pytest

from repro.bench.report import ResultTable


@pytest.fixture
def table() -> ResultTable:
    t = ResultTable(
        experiment="figX", title="demo", columns=["d", "value"]
    )
    t.add_row(d=5, value=1.2345)
    t.add_row(d=6, value=250.0)
    t.add_note("a note")
    return t


class TestResultTable:
    def test_add_row_validates_columns(self, table):
        with pytest.raises(ValueError, match="unknown columns"):
            table.add_row(bogus=1)

    def test_column_access(self, table):
        assert table.column("d") == [5, 6]
        with pytest.raises(KeyError):
            table.column("missing")

    def test_text_rendering(self, table):
        text = table.to_text()
        assert "figX" in text and "demo" in text
        assert "1.23" in text and "250" in text
        assert "note: a note" in text

    def test_markdown_rendering(self, table):
        md = table.to_markdown()
        assert md.startswith("### figX")
        assert "| d | value |" in md
        assert "*a note*" in md

    def test_missing_cell_rendered_as_dash(self):
        t = ResultTable(experiment="e", title="t", columns=["a", "b"])
        t.add_row(a=1)
        assert "-" in t.to_text()

    def test_float_formats(self):
        t = ResultTable(experiment="e", title="t", columns=["x"])
        t.add_row(x=0.00123)
        t.add_row(x=12.5)
        t.add_row(x=1234.5)
        t.add_row(x=0.0)
        text = t.to_text()
        assert "0.0012" in text and "12.50" in text and "1234" in text
