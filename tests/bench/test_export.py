"""Tests for the EXPERIMENTS.md exporter."""

import pytest

from repro.bench import EXPERIMENTS
from repro.bench.export import _reflow, build_document, main

pytestmark = pytest.mark.slow


def test_build_document_contains_every_experiment():
    document = build_document("tiny")
    for name in EXPERIMENTS:
        assert f"### {name}" in document
    assert document.startswith("# EXPERIMENTS")
    assert "Paper's claim." in document


def test_main_writes_file(tmp_path):
    target = tmp_path / "EXPERIMENTS.md"
    assert main(["--scale", "tiny", "--output", str(target)]) == 0
    text = target.read_text()
    assert "fig4h" in text


def test_reflow_drops_headline():
    doc = """Headline.

    Body line one
    body line two.
    """
    out = _reflow(doc)
    assert "Headline" not in out
    assert "Body line one body line two." == out
