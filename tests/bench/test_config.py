"""Unit tests for benchmark scaling/config."""

import pytest

from repro.bench.config import SCALES, ExperimentConfig, Scale, resolve_scale


class TestScale:
    def test_known_scales(self):
        assert set(SCALES) == {"tiny", "default", "paper"}

    def test_paper_scale_is_identity(self):
        config = ExperimentConfig()
        scaled = config.scaled(SCALES["paper"])
        assert scaled.n_peers == config.n_peers
        assert scaled.points_per_peer == config.points_per_peer

    def test_tiny_scale_shrinks(self):
        scaled = ExperimentConfig().scaled(SCALES["tiny"])
        assert scaled.n_peers < ExperimentConfig().n_peers
        assert scaled.points_per_peer < ExperimentConfig().points_per_peer

    def test_scale_floors(self):
        tiny = Scale(name="x", peer_factor=1e-9, points_factor=1e-9, queries=1)
        scaled = ExperimentConfig().scaled(tiny)
        assert scaled.n_peers >= 4
        assert scaled.points_per_peer >= 5

    def test_resolve_by_name(self):
        assert resolve_scale("tiny") is SCALES["tiny"]

    def test_resolve_instance_passthrough(self):
        s = SCALES["paper"]
        assert resolve_scale(s) is s

    def test_resolve_env_var(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "tiny")
        assert resolve_scale(None) is SCALES["tiny"]

    def test_resolve_unknown(self):
        with pytest.raises(ValueError, match="unknown scale"):
            resolve_scale("galactic")

    def test_default_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert resolve_scale(None) is SCALES["default"]


class TestExperimentConfig:
    def test_paper_defaults(self):
        config = ExperimentConfig()
        assert config.n_peers == 4000
        assert config.points_per_peer == 250
        assert config.dimensionality == 8
        assert config.query_dimensionality == 3
        assert config.degree == 4.0
        assert config.dataset == "uniform"

    def test_total_points(self):
        assert ExperimentConfig().total_points == 1_000_000
