"""Tests for the shared sweep machinery (memoization & structure)."""

import pytest

from repro.bench.sweeps import (
    ALL_VARIANTS,
    run_clustered_baseline,
    sweep_dimensionality,
)
from repro.skypeer.variants import Variant

pytestmark = pytest.mark.slow


def test_sweep_memoized_per_scale():
    first = sweep_dimensionality("tiny")
    second = sweep_dimensionality("tiny")
    assert first is second


def test_sweep_covers_paper_range():
    result = sweep_dimensionality("tiny")
    assert sorted(result) == [5, 6, 7, 8, 9, 10]
    for stats in result.values():
        assert set(stats) == set(ALL_VARIANTS)


def test_stats_are_aggregates():
    result = sweep_dimensionality("tiny")
    for stats in result.values():
        for vs in stats.values():
            assert vs.queries >= 1
            assert vs.mean_total_time >= vs.mean_computational_time


def test_clustered_baseline_contains_all_variants():
    stats = run_clustered_baseline("tiny")
    assert set(stats) == set(Variant)
