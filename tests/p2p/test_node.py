"""Unit tests for peers and super-peers (pre-processing, section 5.3)."""

import numpy as np
import pytest

from repro.core.dataset import PointSet
from repro.core.store import SortedByF
from repro.p2p.node import Peer, SuperPeer
from tests.conftest import brute_force_skyline_ids


class TestPeer:
    def test_computes_ext_skyline(self, rng):
        data = PointSet(rng.random((80, 4)))
        peer = Peer(peer_id=0, data=data)
        got = peer.compute_extended_skyline()
        expected = brute_force_skyline_ids(data, (0, 1, 2, 3), strict=True)
        assert got.points.id_set() == expected

    def test_paper_figure2_peer_a(self, paper_peer_a):
        peer = Peer(peer_id=0, data=paper_peer_a)
        assert peer.compute_extended_skyline().points.id_set() == {1, 2, 3, 4, 5}

    def test_len(self, rng):
        assert len(Peer(peer_id=0, data=PointSet(rng.random((7, 2))))) == 7


class TestSuperPeer:
    def test_merge_of_figure2_peers(self, paper_peer_a, paper_peer_b):
        """Super-peer merge over P_A and P_B matches the ext-skyline of
        their union (the invariant of section 5.3)."""
        sp = SuperPeer(superpeer_id=0, dimensionality=4)
        for pid, data in ((0, paper_peer_a), (1, paper_peer_b)):
            sp.receive_peer_skyline(pid, Peer(peer_id=pid, data=data).compute_extended_skyline().result)
        sp.rebuild_store()
        union = PointSet.concat([paper_peer_a, paper_peer_b])
        expected = brute_force_skyline_ids(union, (0, 1, 2, 3), strict=True)
        assert sp.store.points.id_set() == expected

    def test_incremental_join_equals_rebuild(self, rng):
        datasets = [PointSet(rng.random((40, 3)), np.arange(i * 40, (i + 1) * 40)) for i in range(4)]
        incremental = SuperPeer(superpeer_id=0, dimensionality=3)
        for pid, data in enumerate(datasets):
            skyline = Peer(peer_id=pid, data=data).compute_extended_skyline().result
            incremental.merge_in_peer(pid, skyline)
        rebuilt = SuperPeer(superpeer_id=1, dimensionality=3)
        for pid, data in enumerate(datasets):
            rebuilt.receive_peer_skyline(
                pid, Peer(peer_id=pid, data=data).compute_extended_skyline().result
            )
        rebuilt.rebuild_store()
        assert incremental.store.points.id_set() == rebuilt.store.points.id_set()

    def test_drop_peer_restores_exactness(self, rng):
        datasets = [PointSet(rng.random((30, 3)), np.arange(i * 30, (i + 1) * 30)) for i in range(3)]
        sp = SuperPeer(superpeer_id=0, dimensionality=3)
        for pid, data in enumerate(datasets):
            sp.receive_peer_skyline(
                pid, Peer(peer_id=pid, data=data).compute_extended_skyline().result
            )
        sp.rebuild_store()
        sp.drop_peer(1)
        union = PointSet.concat([datasets[0], datasets[2]])
        expected = brute_force_skyline_ids(union, (0, 1, 2), strict=True)
        assert sp.store.points.id_set() == expected

    def test_dimensionality_check(self, rng):
        sp = SuperPeer(superpeer_id=0, dimensionality=3)
        bad = SortedByF.from_points(PointSet(rng.random((5, 2))))
        with pytest.raises(ValueError, match="4-dim|2-dim"):
            sp.receive_peer_skyline(0, bad)

    def test_require_store_before_preprocessing(self):
        sp = SuperPeer(superpeer_id=0, dimensionality=3)
        with pytest.raises(RuntimeError, match="no store"):
            sp.require_store()
        assert sp.store_size == 0
