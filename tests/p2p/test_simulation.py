"""Unit tests for the store-and-forward transfer simulation."""

import pytest

from repro.p2p.simulation import TransferRequest, simulate_transfers


class TestSimulateTransfers:
    def test_empty(self):
        assert simulate_transfers([]) == {}

    def test_single_hop(self):
        out = simulate_transfers(
            [TransferRequest("m", ready_at=1.0, path=((1, 0),), seconds_per_hop=2.0)]
        )
        assert out["m"] == pytest.approx(3.0)

    def test_multi_hop_store_and_forward(self):
        out = simulate_transfers(
            [TransferRequest("m", 0.0, ((2, 1), (1, 0)), 1.5)]
        )
        assert out["m"] == pytest.approx(3.0)

    def test_empty_path_delivers_at_ready(self):
        out = simulate_transfers([TransferRequest("m", 4.2, (), 1.0)])
        assert out["m"] == pytest.approx(4.2)

    def test_shared_edge_serializes(self):
        """Two messages funneling into the same link cannot overlap."""
        requests = [
            TransferRequest("a", 0.0, ((1, 0),), 2.0),
            TransferRequest("b", 0.0, ((1, 0),), 2.0),
        ]
        out = simulate_transfers(requests)
        assert sorted(out.values()) == [pytest.approx(2.0), pytest.approx(4.0)]

    def test_disjoint_edges_parallel(self):
        requests = [
            TransferRequest("a", 0.0, ((1, 0),), 2.0),
            TransferRequest("b", 0.0, ((2, 0),), 2.0),
        ]
        out = simulate_transfers(requests)
        assert out["a"] == pytest.approx(2.0)
        assert out["b"] == pytest.approx(2.0)

    def test_fifo_order_on_shared_edge(self):
        """The earlier-ready message goes first."""
        requests = [
            TransferRequest("late", 1.0, ((1, 0),), 1.0),
            TransferRequest("early", 0.0, ((1, 0),), 1.0),
        ]
        out = simulate_transfers(requests)
        assert out["early"] == pytest.approx(1.0)
        assert out["late"] == pytest.approx(2.0)

    def test_relay_funnel(self):
        """Leaves behind a relay serialize on the relay's uplink — the
        fixed-merging bottleneck of the paper."""
        # 3 leaves -> relay node 1 -> root 0
        requests = [
            TransferRequest(f"leaf{i}", 0.0, ((10 + i, 1), (1, 0)), 1.0)
            for i in range(3)
        ]
        out = simulate_transfers(requests)
        assert max(out.values()) == pytest.approx(4.0)  # 1s down, then 3 serialized

    def test_direction_matters(self):
        """Edges are directed: up and down traffic do not contend."""
        requests = [
            TransferRequest("up", 0.0, ((1, 0),), 1.0),
            TransferRequest("down", 0.0, ((0, 1),), 1.0),
        ]
        out = simulate_transfers(requests)
        assert out["up"] == pytest.approx(1.0)
        assert out["down"] == pytest.approx(1.0)

    def test_rejects_negative_duration(self):
        with pytest.raises(ValueError):
            simulate_transfers([TransferRequest("m", 0.0, ((1, 0),), -1.0)])

    def test_zero_duration_messages(self):
        out = simulate_transfers(
            [TransferRequest("m", 0.5, ((1, 0), (0, 2)), 0.0)]
        )
        assert out["m"] == pytest.approx(0.5)
