"""Unit tests for the network cost model."""

import pytest

from repro.p2p.cost import DEFAULT_COST_MODEL, CostModel


class TestCostModel:
    def test_default_bandwidth_is_4kb(self):
        assert DEFAULT_COST_MODEL.bandwidth_bytes_per_sec == 4096.0

    def test_transfer_seconds(self):
        model = CostModel(bandwidth_bytes_per_sec=1024.0)
        assert model.transfer_seconds(2048) == pytest.approx(2.0)

    def test_point_bytes_grows_with_k(self):
        model = CostModel()
        assert model.point_bytes(3) > model.point_bytes(2)

    def test_result_bytes_linear_in_points(self):
        model = CostModel()
        header = model.result_bytes(0, 3)
        assert model.result_bytes(10, 3) == header + 10 * model.point_bytes(3)

    def test_result_bytes_rejects_negative(self):
        with pytest.raises(ValueError):
            CostModel().result_bytes(-1, 2)

    def test_query_bytes_contains_threshold_and_dims(self):
        model = CostModel()
        assert model.query_bytes(3) == (
            model.message_header_bytes
            + model.threshold_bytes
            + 3 * model.dimension_tag_bytes
        )

    def test_rejects_non_positive_bandwidth(self):
        with pytest.raises(ValueError):
            CostModel(bandwidth_bytes_per_sec=0.0)

    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_COST_MODEL.bandwidth_bytes_per_sec = 1.0
