"""Tests for point-level data updates at peers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dataset import PointSet
from repro.core.extended_skyline import extended_skyline_points, subspace_skyline_points
from repro.data.workload import Query
from repro.p2p.network import SuperPeerNetwork
from repro.p2p.updates import delete_points, insert_points
from repro.skypeer.executor import execute_query
from repro.skypeer.variants import Variant


@pytest.fixture
def network() -> SuperPeerNetwork:
    return SuperPeerNetwork.build(n_peers=20, points_per_peer=25, dimensionality=4, seed=3)


def _assert_stores_fresh(network):
    """Every super-peer store equals the ext-skyline of its peers' data."""
    for sp_id, sp in network.superpeers.items():
        peer_ids = network.topology.peers_of[sp_id]
        union = PointSet.concat([network.peers[p].data for p in peer_ids])
        assert sp.store.points.id_set() == extended_skyline_points(union).id_set()


def _assert_queries_exact(network):
    query = Query(subspace=(0, 2), initiator=network.topology.superpeer_ids[0])
    truth = subspace_skyline_points(network.all_points(), (0, 2)).id_set()
    assert execute_query(network, query, Variant.FTPM).result_ids == truth


class TestInsert:
    def test_insert_updates_store(self, network, rng):
        peer_id = next(iter(network.peers))
        outcome = insert_points(
            network, peer_id, PointSet(rng.random((10, 4)), np.arange(9000, 9010))
        )
        assert outcome.kind == "insert"
        assert outcome.points_changed == 10
        assert not outcome.store_rebuilt
        _assert_stores_fresh(network)
        _assert_queries_exact(network)

    def test_dominating_insert_evicts(self, network):
        """An all-zeros point ext-dominates everything nonzero."""
        peer_id = next(iter(network.peers))
        super_point = PointSet(np.zeros((1, 4)), np.array([9999]))
        insert_points(network, peer_id, super_point)
        _assert_stores_fresh(network)
        sp = network.topology.superpeer_of_peer(peer_id)
        assert 9999 in network.superpeers[sp].store.points.id_set()

    def test_insert_never_full_resorts(self, network, rng):
        """The incremental insert path moves stores only by splices."""
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.runtime import observed

        peer_id = next(iter(network.peers))
        registry = MetricsRegistry()
        with observed(metrics=registry):
            outcome = insert_points(
                network, peer_id, PointSet(rng.random((5, 4)), np.arange(9100, 9105))
            )
        assert outcome.path == "spliced"
        assert registry.total("store.from_points") == 0
        assert registry.total("update.spliced") == 1
        _assert_stores_fresh(network)

    def test_duplicate_ids_rejected(self, network, rng):
        peer_id = next(iter(network.peers))
        existing = int(network.peers[peer_id].data.ids[0])
        with pytest.raises(ValueError, match="already present"):
            insert_points(
                network, peer_id, PointSet(rng.random((1, 4)), np.array([existing]))
            )

    def test_dimensionality_checked(self, network, rng):
        peer_id = next(iter(network.peers))
        with pytest.raises(ValueError, match="dim"):
            insert_points(network, peer_id, PointSet(rng.random((2, 3))))

    def test_unknown_peer(self, network, rng):
        with pytest.raises(KeyError):
            insert_points(network, 10**9, PointSet(rng.random((1, 4))))


class TestDelete:
    def test_delete_non_skyline_point_is_cheap(self, network):
        """Deleting a dominated point must not rebuild anything."""
        for peer_id, peer in network.peers.items():
            sp = network.topology.superpeer_of_peer(peer_id)
            uploaded = network.superpeers[sp].peer_skylines[peer_id].points.id_set()
            dominated = [int(i) for i in peer.data.ids if int(i) not in uploaded]
            if dominated:
                outcome = delete_points(network, peer_id, [dominated[0]])
                assert not outcome.store_rebuilt
                assert outcome.peer_skyline_delta == 0
                _assert_stores_fresh(network)
                _assert_queries_exact(network)
                return
        pytest.skip("no dominated point found (unexpected at this size)")

    def test_delete_skyline_point_resurfaces_shadowed(self, network):
        peer_id = next(iter(network.peers))
        sp = network.topology.superpeer_of_peer(peer_id)
        uploaded = sorted(network.superpeers[sp].peer_skylines[peer_id].points.id_set())
        outcome = delete_points(network, peer_id, uploaded[:2])
        # The eviction ledger answers: only orphans are re-tested, no
        # peer ext-skyline recompute, no store rebuild.
        assert outcome.path == "promoted"
        assert not outcome.store_rebuilt
        assert 0 < outcome.examined < len(network.peers[peer_id])
        _assert_stores_fresh(network)
        _assert_queries_exact(network)

    def test_delete_missing_point(self, network):
        peer_id = next(iter(network.peers))
        with pytest.raises(KeyError, match="does not hold"):
            delete_points(network, peer_id, [10**9])

    def test_delete_everything_from_peer(self, network):
        peer_id = next(iter(network.peers))
        all_ids = [int(i) for i in network.peers[peer_id].data.ids]
        delete_points(network, peer_id, all_ids)
        assert len(network.peers[peer_id]) == 0
        _assert_queries_exact(network)


@given(st.integers(0, 10_000), st.integers(1, 12), st.integers(0, 6))
@settings(max_examples=20, deadline=None)
def test_update_sequences_stay_exact(seed, n_insert, n_delete):
    """Random insert/delete sequences == rebuild from scratch."""
    rng = np.random.default_rng(seed)
    network = SuperPeerNetwork.build(
        n_peers=6, points_per_peer=10, dimensionality=3, n_superpeers=2, seed=seed
    )
    peer_id = int(rng.choice(list(network.peers)))
    insert_points(
        network, peer_id,
        PointSet(rng.random((n_insert, 3)), np.arange(50_000, 50_000 + n_insert)),
    )
    holdable = [int(i) for i in network.peers[peer_id].data.ids]
    victims = list(rng.choice(holdable, size=min(n_delete, len(holdable)), replace=False))
    if victims:
        delete_points(network, peer_id, victims)
    for sp_id, sp in network.superpeers.items():
        peer_ids = network.topology.peers_of[sp_id]
        parts = [network.peers[p].data for p in peer_ids if len(network.peers[p].data)]
        if not parts:
            assert sp.store_size == 0
            continue
        union = PointSet.concat(parts)
        assert sp.store.points.id_set() == extended_skyline_points(union).id_set()
