"""Property test: arbitrary churn/update sequences preserve exactness.

Random interleavings of peer joins, peer failures, super-peer failures,
point inserts and point deletes — after every step the distributed
answer must equal the centralized oracle over whatever data remains.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.p2p.churn import fail_superpeer

pytestmark = pytest.mark.slow


@given(st.integers(0, 2**31 - 1), st.lists(st.integers(0, 4), min_size=1, max_size=6))
@settings(max_examples=15, deadline=None)
def test_random_churn_sequences_stay_exact(seed, ops):
    rng = np.random.default_rng(seed)
    net = repro.SuperPeerNetwork.build(
        n_peers=12, points_per_peer=12, dimensionality=3, n_superpeers=3, seed=seed
    )
    next_id = 10_000
    for op in ops:
        if op == 0:  # join
            sp = int(rng.choice(net.topology.superpeer_ids))
            pts = repro.PointSet(rng.random((6, 3)), np.arange(next_id, next_id + 6))
            next_id += 6
            repro.join_peer(net, sp, pts)
        elif op == 1 and len(net.peers) > 1:  # peer failure
            repro.fail_peer(net, int(rng.choice(list(net.peers))))
        elif op == 2 and net.n_superpeers > 1:  # super-peer failure
            fail_superpeer(net, int(rng.choice(net.topology.superpeer_ids)))
        elif op == 3:  # insert points
            peer = int(rng.choice(list(net.peers)))
            pts = repro.PointSet(rng.random((4, 3)), np.arange(next_id, next_id + 4))
            next_id += 4
            repro.insert_points(net, peer, pts)
        elif op == 4:  # delete points
            candidates = [p for p in net.peers if len(net.peers[p])]
            if candidates:
                peer = int(rng.choice(candidates))
                held = list(net.peers[peer].data.ids)
                victims = rng.choice(
                    held, size=min(3, len(held)), replace=False
                )
                repro.delete_points(net, peer, [int(v) for v in victims])
        # exactness after every mutation
        if len(net.all_points()) == 0:
            continue
        sub = (0, 2)
        truth = repro.subspace_skyline_points(net.all_points(), sub).id_set()
        query = repro.Query(subspace=sub, initiator=net.topology.superpeer_ids[0])
        got = repro.execute_query(net, query, "rtpm")
        assert got.result_ids == truth
