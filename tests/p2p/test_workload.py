"""Churn workload generation: schedules, grids, op planning, rebuild."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dataset import PointSet
from repro.data.workload import Query
from repro.p2p.network import SuperPeerNetwork
from repro.p2p.topology import Topology
from repro.p2p.workload import (
    ChurnOp,
    apply_op,
    churn_grid,
    churn_schedule,
    fresh_points,
    next_point_id,
    plan_op,
    rebuild_reference,
)
from repro.skypeer.executor import execute_query
from repro.skypeer.variants import Variant


def build_network(seed: int = 7, d: int = 4) -> SuperPeerNetwork:
    rng = np.random.default_rng(seed)
    topo = Topology.generate(n_peers=9, n_superpeers=3, degree=3.0, seed=seed)
    partitions = {}
    next_id = 0
    for peers in topo.peers_of.values():
        for pid in peers:
            partitions[pid] = PointSet(
                rng.random((10, d)), np.arange(next_id, next_id + 10)
            )
            next_id += 10
    return SuperPeerNetwork.from_partitions(topo, partitions)


# ----------------------------------------------------------------------
# schedules
# ----------------------------------------------------------------------
class TestChurnSchedule:
    def test_replays_identically_from_the_seed(self):
        a = churn_schedule(16, 0.7, 0.3, seed=42)
        b = churn_schedule(16, 0.7, 0.3, seed=42)
        assert a == b

    def test_different_seeds_differ(self):
        assert churn_schedule(16, 0.5, 0.5, seed=1) != churn_schedule(
            16, 0.5, 0.5, seed=2
        )

    def test_pure_update_rate_never_churns(self):
        ops = churn_schedule(32, 1.0, 0.0, seed=0)
        assert {op.kind for op in ops} <= {"insert", "delete"}

    def test_pure_churn_rate_never_updates(self):
        ops = churn_schedule(32, 0.0, 1.0, seed=0)
        assert {op.kind for op in ops} <= {"join", "fail"}

    def test_mixed_rates_draw_both_families(self):
        kinds = {op.kind for op in churn_schedule(64, 0.5, 0.5, seed=3)}
        assert kinds & {"insert", "delete"}
        assert kinds & {"join", "fail"}

    def test_every_op_gets_its_own_seed(self):
        ops = churn_schedule(16, 1.0, 1.0, seed=5)
        assert len({op.seed for op in ops}) == len(ops)
        assert [op.index for op in ops] == list(range(16))

    def test_zero_rates_yield_empty_schedule(self):
        assert churn_schedule(8, 0.0, 0.0) == ()
        assert churn_schedule(0, 1.0, 1.0) == ()

    def test_rejects_negative_inputs(self):
        with pytest.raises(ValueError):
            churn_schedule(-1, 1.0, 0.0)
        with pytest.raises(ValueError):
            churn_schedule(4, -0.1, 0.0)


class TestChurnGrid:
    def test_default_grid_excludes_zero_zero(self):
        cells = churn_grid()
        assert (0.0, 0.0) not in cells
        assert (1.0, 0.0) in cells and (0.0, 1.0) in cells

    def test_custom_rates(self):
        assert churn_grid([1.0], [0.0, 1.0]) == ((1.0, 0.0), (1.0, 1.0))


# ----------------------------------------------------------------------
# planning + application
# ----------------------------------------------------------------------
class TestPlanOp:
    def test_plan_is_deterministic_and_pure(self):
        network = build_network()
        op = ChurnOp(index=0, kind="insert", n_points=3, seed=99)
        epoch = network.epoch
        kind_a, kwargs_a = plan_op(network, op)
        kind_b, kwargs_b = plan_op(network, op)
        assert network.epoch == epoch  # planning never mutates
        assert kind_a == kind_b == "insert"
        assert kwargs_a["peer_id"] == kwargs_b["peer_id"]
        assert np.array_equal(
            kwargs_a["points"].values, kwargs_b["points"].values
        )

    def test_infeasible_delete_degrades_to_insert(self):
        network = build_network()
        for peer in network.peers.values():
            peer.data = PointSet(
                np.empty((0, network.dimensionality)), np.empty(0, dtype=np.int64)
            )
        kind, kwargs = plan_op(network, ChurnOp(0, "delete", 2, seed=1))
        assert kind == "insert"
        assert len(kwargs["points"]) == 2

    def test_fail_targets_only_peers_with_siblings(self):
        network = build_network()
        kind, kwargs = plan_op(network, ChurnOp(0, "fail", 0, seed=2))
        assert kind == "fail"
        sp = network.topology.superpeer_of_peer(kwargs["peer_id"])
        assert len(network.topology.peers_of[sp]) > 1

    def test_insert_allocates_globally_fresh_ids(self):
        network = build_network()
        _, kwargs = plan_op(network, ChurnOp(0, "insert", 4, seed=3))
        existing = {
            int(i) for peer in network.peers.values() for i in peer.data.ids
        }
        assert not existing & {int(i) for i in kwargs["points"].ids}


class TestFreshPoints:
    def test_seed_determinism_and_fresh_ids(self):
        network = build_network()
        a = fresh_points(network, 5, seed=11)
        b = fresh_points(network, 5, seed=11)
        assert np.array_equal(a.values, b.values)
        assert int(a.ids.min()) == next_point_id(network)

    def test_next_point_id_on_empty_network(self):
        network = build_network()
        for peer in network.peers.values():
            peer.data = PointSet(
                np.empty((0, network.dimensionality)), np.empty(0, dtype=np.int64)
            )
        assert next_point_id(network) == 0


# ----------------------------------------------------------------------
# incremental vs from-scratch identity
# ----------------------------------------------------------------------
def _skylines(network: SuperPeerNetwork, subspaces) -> list:
    out = []
    for subspace in subspaces:
        query = Query(
            subspace=tuple(subspace), initiator=network.topology.superpeer_ids[0]
        )
        out.append(execute_query(network, query, Variant.FTPM).result)
    return out


@pytest.mark.parametrize("update_rate,churn_rate", [(1.0, 0.0), (0.5, 0.5), (0.0, 1.0)])
def test_applied_schedule_matches_from_scratch_rebuild(update_rate, churn_rate):
    """The core identity: incremental maintenance == full recomputation."""
    network = build_network()
    for op in churn_schedule(6, update_rate, churn_rate, seed=13):
        apply_op(network, op)
    reference = rebuild_reference(network)
    subspaces = [(0, 1, 2), (1, 3), (0, 2, 3)]
    for live, rebuilt in zip(_skylines(network, subspaces), _skylines(reference, subspaces)):
        assert np.array_equal(live.points.values, rebuilt.points.values)
        assert np.array_equal(live.points.ids, rebuilt.points.ids)
        assert np.array_equal(live.f, rebuilt.f)


def test_rebuild_reference_is_a_deep_copy():
    network = build_network()
    reference = rebuild_reference(network)
    assert reference is not network
    assert set(reference.peers) == set(network.peers)
    pid = sorted(network.peers)[0]
    assert np.array_equal(
        reference.peers[pid].data.values, network.peers[pid].data.values
    )
    assert not np.shares_memory(
        reference.peers[pid].data.values, network.peers[pid].data.values
    )


def test_apply_op_bumps_only_the_touched_generation():
    network = build_network()
    before = dict(network.store_generations)
    op = ChurnOp(index=0, kind="insert", n_points=2, seed=17)
    kind, kwargs = plan_op(network, op)
    assert kind == "insert"
    apply_op(network, op)
    touched = network.topology.superpeer_of_peer(kwargs["peer_id"])
    for sp, gen in network.store_generations.items():
        if sp == touched:
            assert gen == before[sp] + 1
        else:
            assert gen == before[sp]
