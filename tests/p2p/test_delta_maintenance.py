"""Delta maintenance vs from-scratch rebuild, under interleaved churn.

The pinning property of the eviction-ledger layer: after *any*
interleaving of inserts, deletes, joins and peer failures, every
super-peer store is byte-identical (values, ids, f keys) to
:func:`~repro.p2p.workload.rebuild_reference`'s full recomputation, the
delta-maintained selectivity report matches the recomputed one, and
every ledger still satisfies the member-witness invariant.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.p2p.network import SuperPeerNetwork
from repro.p2p.workload import ChurnOp, apply_op, rebuild_reference


def _make_network(seed: int) -> SuperPeerNetwork:
    return SuperPeerNetwork.build(
        n_peers=6,
        points_per_peer=10,
        dimensionality=3,
        n_superpeers=2,
        seed=seed,
    )


def _assert_matches_rebuild(network: SuperPeerNetwork) -> None:
    reference = rebuild_reference(network)
    for sp_id, superpeer in network.superpeers.items():
        ref_store = reference.superpeers[sp_id].require_store()
        store = superpeer.require_store()
        assert np.array_equal(store.points.values, ref_store.points.values)
        assert np.array_equal(store.points.ids, ref_store.points.ids)
        assert np.array_equal(store.f, ref_store.f)
    # The delta-maintained selectivity report equals the recomputed one.
    live, ref = network.preprocessing, reference.preprocessing
    assert live is not None and ref is not None
    assert live.total_points == ref.total_points
    assert live.peer_skyline_points == ref.peer_skyline_points
    assert live.superpeer_store_points == ref.superpeer_store_points
    assert live.upload_bytes == ref.upload_bytes


def _assert_ledger_invariants(network: SuperPeerNetwork) -> None:
    """Every live ledger entry is witnessed by a *current* member."""
    for superpeer in network.superpeers.values():
        for peer_id, ledger in superpeer.peer_ledgers.items():
            upload_ids = superpeer.peer_skylines[peer_id].points.id_set()
            for pid in ledger.entries:
                assert ledger.witness_of(pid) in upload_ids
        if superpeer.store_ledger is not None and superpeer.store is not None:
            store_ids = superpeer.store.points.id_set()
            for pid in superpeer.store_ledger.entries:
                assert superpeer.store_ledger.witness_of(pid) in store_ids


@settings(max_examples=12, deadline=None)
@given(
    kinds=st.lists(
        st.sampled_from(["insert", "delete", "join", "fail"]),
        min_size=1,
        max_size=8,
    ),
    seed=st.integers(0, 2**16),
)
def test_interleaved_ops_stay_byte_identical(kinds, seed):
    network = _make_network(seed % 7)
    for index, kind in enumerate(kinds):
        apply_op(
            network,
            ChurnOp(index=index, kind=kind, n_points=3, seed=seed * 1009 + index),
        )
        _assert_ledger_invariants(network)
    _assert_matches_rebuild(network)


def test_delete_storm_exercises_ledger_path():
    """A delete-heavy run must hit the promoted path, never the rebuild
    fallback, and still match the reference byte for byte."""
    network = _make_network(seed=3)
    paths = []
    for index in range(10):
        outcome = apply_op(
            network, ChurnOp(index=index, kind="delete", n_points=3, seed=42 + index)
        )
        paths.append(outcome.path)
        _assert_matches_rebuild(network)
    assert "promoted" in paths
    assert "rebuilt" not in paths


def test_fail_after_updates_uses_store_ledger():
    """drop_peer withdraws incrementally once the ledger is live."""
    from repro.p2p.churn import fail_peer

    network = _make_network(seed=5)
    apply_op(network, ChurnOp(index=0, kind="insert", n_points=4, seed=11))
    apply_op(network, ChurnOp(index=1, kind="delete", n_points=2, seed=12))
    victim = sorted(network.peers)[0]
    store_size = network.superpeers[
        network.topology.superpeer_of_peer(victim)
    ].store_size
    event = fail_peer(network, victim)
    assert event.path == "promoted"
    assert event.examined <= store_size
    _assert_matches_rebuild(network)
    _assert_ledger_invariants(network)
