"""Unit tests for the wire format."""

import math

import numpy as np
import pytest

from repro.core.dataset import PointSet
from repro.core.store import SortedByF
from repro.p2p.wire import QueryMessage, ResultMessage, WireError, decode


class TestQueryMessage:
    def test_roundtrip(self):
        msg = QueryMessage(query_id=7, subspace=(0, 3, 6), threshold=0.25, initiator=42)
        assert decode(msg.encode()) == msg

    def test_infinite_threshold_roundtrips(self):
        msg = QueryMessage(query_id=1, subspace=(2,), threshold=math.inf, initiator=0)
        assert decode(msg.encode()).threshold == math.inf

    def test_empty_subspace_rejected(self):
        with pytest.raises(WireError, match="at least one"):
            QueryMessage(query_id=1, subspace=(), threshold=1.0, initiator=0).encode()

    def test_byte_size_matches_structure(self):
        """Size = header(16) + k*2 + threshold(8) + initiator(8)."""
        k3 = len(QueryMessage(1, (0, 1, 2), 1.0, 0).encode())
        k5 = len(QueryMessage(1, (0, 1, 2, 3, 4), 1.0, 0).encode())
        assert k5 - k3 == 4  # two more 2-byte dimension tags


class TestResultMessage:
    def _store(self, rng, n=10, d=4) -> SortedByF:
        return SortedByF.from_points(PointSet(rng.random((n, d)), np.arange(100, 100 + n)))

    def test_roundtrip(self, rng):
        store = self._store(rng)
        msg = ResultMessage.from_store(9, sender=3, result=store, subspace=(0, 2))
        back = decode(msg.encode())
        assert back == msg
        assert back.k == 2
        assert len(back) == 10

    def test_to_store_preserves_ids_f_and_projection(self, rng):
        store = self._store(rng)
        msg = ResultMessage.from_store(9, sender=3, result=store, subspace=(1, 3))
        rebuilt = msg.to_store()
        assert rebuilt.points.id_set() == store.points.id_set()
        np.testing.assert_allclose(rebuilt.f, store.f)
        np.testing.assert_allclose(rebuilt.points.values, store.points.values[:, [1, 3]])

    def test_empty_result(self):
        msg = ResultMessage(query_id=1, sender=2, ids=(), f=(), coords=())
        back = decode(msg.encode())
        assert len(back) == 0
        assert len(back.to_store()) == 0

    def test_per_point_size_matches_cost_model_shape(self, rng):
        """Growth per point is id + f + k coordinates (all 8 bytes)."""
        s1 = self._store(rng, n=1)
        s2 = self._store(rng, n=2)
        b1 = len(ResultMessage.from_store(1, 0, s1, (0, 1, 2)).encode())
        b2 = len(ResultMessage.from_store(1, 0, s2, (0, 1, 2)).encode())
        assert b2 - b1 == 8 + 8 + 3 * 8

    def test_ragged_coords_rejected(self):
        msg = ResultMessage(query_id=1, sender=0, ids=(1, 2), f=(0.1, 0.2),
                            coords=((1.0, 2.0), (1.0,)))
        with pytest.raises(WireError, match="ragged"):
            msg.encode()

    def test_parallel_arrays_enforced(self):
        msg = ResultMessage(query_id=1, sender=0, ids=(1,), f=(), coords=())
        with pytest.raises(WireError, match="parallel"):
            msg.encode()


class TestFraming:
    def test_bad_magic(self):
        blob = QueryMessage(1, (0,), 1.0, 0).encode()
        with pytest.raises(WireError, match="magic"):
            decode(b"XX" + blob[2:])

    def test_truncated_header(self):
        with pytest.raises(WireError, match="shorter than header"):
            decode(b"SP")

    def test_truncated_body(self):
        blob = QueryMessage(1, (0, 1), 1.0, 0).encode()
        with pytest.raises(WireError):
            decode(blob[:-2])

    def test_unknown_version(self):
        blob = bytearray(QueryMessage(1, (0,), 1.0, 0).encode())
        blob[2] = 99
        with pytest.raises(WireError, match="version"):
            decode(bytes(blob))

    def test_unknown_kind(self):
        blob = bytearray(QueryMessage(1, (0,), 1.0, 0).encode())
        blob[3] = 77
        with pytest.raises(WireError, match="kind"):
            decode(bytes(blob))
