"""Unit tests for the wire format."""

import math

import numpy as np
import pytest

from repro.core.dataset import PointSet
from repro.core.store import SortedByF
from repro.p2p.cost import DEFAULT_COST_MODEL
from repro.p2p.wire import (
    HEADER_SIZE,
    QueryMessage,
    ResultMessage,
    WireError,
    cost_estimate,
    decode,
    decode_header,
)


class TestQueryMessage:
    def test_roundtrip(self):
        msg = QueryMessage(query_id=7, subspace=(0, 3, 6), threshold=0.25, initiator=42)
        assert decode(msg.encode()) == msg

    def test_infinite_threshold_roundtrips(self):
        msg = QueryMessage(query_id=1, subspace=(2,), threshold=math.inf, initiator=0)
        assert decode(msg.encode()).threshold == math.inf

    def test_empty_subspace_rejected(self):
        with pytest.raises(WireError, match="at least one"):
            QueryMessage(query_id=1, subspace=(), threshold=1.0, initiator=0).encode()

    def test_byte_size_matches_structure(self):
        """Size = header(16) + k*2 + threshold(8) + initiator(8)."""
        k3 = len(QueryMessage(1, (0, 1, 2), 1.0, 0).encode())
        k5 = len(QueryMessage(1, (0, 1, 2, 3, 4), 1.0, 0).encode())
        assert k5 - k3 == 4  # two more 2-byte dimension tags


class TestResultMessage:
    def _store(self, rng, n=10, d=4) -> SortedByF:
        return SortedByF.from_points(PointSet(rng.random((n, d)), np.arange(100, 100 + n)))

    def test_roundtrip(self, rng):
        store = self._store(rng)
        msg = ResultMessage.from_store(9, sender=3, result=store, subspace=(0, 2))
        back = decode(msg.encode())
        assert back == msg
        assert back.k == 2
        assert len(back) == 10

    def test_to_store_preserves_ids_f_and_projection(self, rng):
        store = self._store(rng)
        msg = ResultMessage.from_store(9, sender=3, result=store, subspace=(1, 3))
        rebuilt = msg.to_store()
        assert rebuilt.points.id_set() == store.points.id_set()
        np.testing.assert_allclose(rebuilt.f, store.f)
        np.testing.assert_allclose(rebuilt.points.values, store.points.values[:, [1, 3]])

    def test_empty_result(self):
        msg = ResultMessage(query_id=1, sender=2, ids=(), f=(), coords=())
        back = decode(msg.encode())
        assert len(back) == 0
        assert len(back.to_store()) == 0

    def test_per_point_size_matches_cost_model_shape(self, rng):
        """Growth per point is id + f + k coordinates (all 8 bytes)."""
        s1 = self._store(rng, n=1)
        s2 = self._store(rng, n=2)
        b1 = len(ResultMessage.from_store(1, 0, s1, (0, 1, 2)).encode())
        b2 = len(ResultMessage.from_store(1, 0, s2, (0, 1, 2)).encode())
        assert b2 - b1 == 8 + 8 + 3 * 8

    def test_ragged_coords_rejected(self):
        msg = ResultMessage(query_id=1, sender=0, ids=(1, 2), f=(0.1, 0.2),
                            coords=((1.0, 2.0), (1.0,)))
        with pytest.raises(WireError, match="ragged"):
            msg.encode()

    def test_parallel_arrays_enforced(self):
        msg = ResultMessage(query_id=1, sender=0, ids=(1,), f=(), coords=())
        with pytest.raises(WireError, match="parallel"):
            msg.encode()


class TestFraming:
    def test_bad_magic(self):
        blob = QueryMessage(1, (0,), 1.0, 0).encode()
        with pytest.raises(WireError, match="magic"):
            decode(b"XX" + blob[2:])

    def test_truncated_header(self):
        with pytest.raises(WireError, match="shorter than header"):
            decode(b"SP")

    def test_truncated_body(self):
        blob = QueryMessage(1, (0, 1), 1.0, 0).encode()
        with pytest.raises(WireError):
            decode(blob[:-2])

    def test_unknown_version(self):
        blob = bytearray(QueryMessage(1, (0,), 1.0, 0).encode())
        blob[2] = 99
        with pytest.raises(WireError, match="version"):
            decode(bytes(blob))

    def test_unknown_kind(self):
        blob = bytearray(QueryMessage(1, (0,), 1.0, 0).encode())
        blob[3] = 77
        with pytest.raises(WireError, match="kind"):
            decode(bytes(blob))


class TestShortReads:
    """Every possible TCP short read must raise WireError, never a raw
    struct.error — the header length field is validated before any
    payload unpacking (satellite of the socket-transport PR)."""

    def _query_blob(self) -> bytes:
        return QueryMessage(
            query_id=5, subspace=(0, 2, 4), threshold=0.75, initiator=11
        ).encode()

    def _result_blob(self, rng) -> bytes:
        points = PointSet(rng.random((3, 4)), np.arange(3))
        store = SortedByF.from_points(points)
        return ResultMessage.from_store(5, sender=2, result=store,
                                        subspace=(0, 2)).encode()

    def test_every_query_prefix_is_a_wire_error(self):
        blob = self._query_blob()
        for cut in range(len(blob)):
            with pytest.raises(WireError):
                decode(blob[:cut])

    def test_every_result_prefix_is_a_wire_error(self, rng):
        blob = self._result_blob(rng)
        for cut in range(len(blob)):
            with pytest.raises(WireError):
                decode(blob[:cut])

    def test_field_boundary_cuts(self, rng):
        """Cuts landing exactly on each wire-field boundary."""
        query, result = self._query_blob(), self._result_blob(rng)
        boundaries = {
            "magic": 2, "version": 3, "kind": 4, "query_id": 12,
            "length": HEADER_SIZE,
            "query_body_head": HEADER_SIZE + 18,  # k + threshold + initiator
            "result_body_head": HEADER_SIZE + 14,  # sender + n + k
        }
        for name, cut in boundaries.items():
            for blob in (query, result):
                if cut >= len(blob):
                    continue
                with pytest.raises(WireError):
                    decode(blob[:cut])

    def test_truncation_reported_before_struct_unpack(self):
        """A header promising more payload than arrived names the gap."""
        blob = self._query_blob()
        with pytest.raises(WireError, match="truncated payload"):
            decode(blob[: HEADER_SIZE + 3])

    def test_trailing_garbage_rejected(self):
        blob = self._query_blob()
        with pytest.raises(WireError, match="trailing garbage"):
            decode(blob + b"\x00")

    def test_decode_header_reads_only_the_header(self):
        kind, query_id, length = decode_header(self._query_blob()[:HEADER_SIZE])
        assert (kind, query_id) == (1, 5)
        assert length > 0


class TestCostEstimate:
    def test_query_estimate_matches_model(self):
        blob = QueryMessage(1, (0, 3, 6), 1.0, 0).encode()
        assert cost_estimate(blob, DEFAULT_COST_MODEL) == DEFAULT_COST_MODEL.query_bytes(3)

    def test_result_estimate_matches_model(self, rng):
        points = PointSet(rng.random((7, 5)), np.arange(7))
        store = SortedByF.from_points(points)
        blob = ResultMessage.from_store(1, 0, store, (0, 1, 4)).encode()
        assert cost_estimate(blob, DEFAULT_COST_MODEL) == DEFAULT_COST_MODEL.result_bytes(7, 3)

    def test_truncated_blob_rejected(self):
        blob = QueryMessage(1, (0,), 1.0, 0).encode()
        with pytest.raises(WireError):
            cost_estimate(blob[:-1], DEFAULT_COST_MODEL)
