"""Unit tests for the discrete-event engine and FIFO links."""

import pytest

from repro.p2p.cost import CostModel
from repro.p2p.engine import EventLoop, LinkLayer


class TestEventLoop:
    def test_runs_in_time_order(self):
        loop = EventLoop()
        log = []
        loop.schedule(3.0, lambda: log.append("c"))
        loop.schedule(1.0, lambda: log.append("a"))
        loop.schedule(2.0, lambda: log.append("b"))
        loop.run()
        assert log == ["a", "b", "c"]

    def test_ties_run_fifo(self):
        loop = EventLoop()
        log = []
        loop.schedule(1.0, lambda: log.append(1))
        loop.schedule(1.0, lambda: log.append(2))
        loop.run()
        assert log == [1, 2]

    def test_now_advances(self):
        loop = EventLoop()
        seen = []
        loop.schedule(2.5, lambda: seen.append(loop.now))
        loop.run()
        assert seen == [2.5]

    def test_nested_scheduling(self):
        loop = EventLoop()
        log = []
        loop.schedule(1.0, lambda: loop.schedule(1.0, lambda: log.append(loop.now)))
        loop.run()
        assert log == [2.0]

    def test_rejects_past(self):
        loop = EventLoop()
        with pytest.raises(ValueError):
            loop.schedule(-1.0, lambda: None)
        with pytest.raises(ValueError):
            loop.schedule_at(-0.5, lambda: None)

    def test_event_budget(self):
        loop = EventLoop()

        def forever():
            loop.schedule(1.0, forever)

        loop.schedule(0.0, forever)
        with pytest.raises(RuntimeError, match="budget"):
            loop.run(max_events=100)

    def test_returns_event_count(self):
        loop = EventLoop()
        for i in range(5):
            loop.schedule(float(i), lambda: None)
        assert loop.run() == 5


class TestLinkLayer:
    def _setup(self, bandwidth=1024.0):
        loop = EventLoop()
        links = LinkLayer(loop, CostModel(bandwidth_bytes_per_sec=bandwidth))
        return loop, links

    def test_delivery_time(self):
        loop, links = self._setup()
        seen = []
        links.send(0, 1, 2048, lambda: seen.append(loop.now))
        loop.run()
        assert seen == [pytest.approx(2.0)]

    def test_accounting(self):
        loop, links = self._setup()
        links.send(0, 1, 100, lambda: None)
        links.send(1, 0, 200, lambda: None)
        loop.run()
        assert links.bytes_sent == 300
        assert links.messages_sent == 2

    def test_link_serializes(self):
        loop, links = self._setup()
        arrivals = []
        links.send(0, 1, 1024, lambda: arrivals.append(loop.now))
        links.send(0, 1, 1024, lambda: arrivals.append(loop.now))
        loop.run()
        assert arrivals == [pytest.approx(1.0), pytest.approx(2.0)]

    def test_opposite_directions_parallel(self):
        loop, links = self._setup()
        arrivals = []
        links.send(0, 1, 1024, lambda: arrivals.append(loop.now))
        links.send(1, 0, 1024, lambda: arrivals.append(loop.now))
        loop.run()
        assert arrivals == [pytest.approx(1.0), pytest.approx(1.0)]

    def test_negative_bytes_rejected(self):
        _loop, links = self._setup()
        with pytest.raises(ValueError):
            links.send(0, 1, -1, lambda: None)
