"""Unit tests for SuperPeerNetwork construction and pre-processing."""

import numpy as np
import pytest

from repro.core.dataset import PointSet
from repro.core.extended_skyline import extended_skyline_points
from repro.p2p.network import SuperPeerNetwork
from repro.p2p.topology import Topology


class TestBuild:
    def test_shape(self, small_network):
        assert small_network.n_peers == 60
        assert small_network.n_superpeers == 3
        assert small_network.dimensionality == 5

    def test_every_superpeer_has_a_store(self, small_network):
        for sp in small_network.superpeers.values():
            assert sp.store is not None
            assert sp.store_size > 0

    def test_total_points(self, small_network):
        assert len(small_network.all_points()) == 60 * 30

    def test_ids_globally_unique(self, small_network):
        points = small_network.all_points()
        assert len(points.id_set()) == len(points)

    def test_deterministic_given_seed(self):
        a = SuperPeerNetwork.build(n_peers=20, points_per_peer=10, dimensionality=3, seed=5)
        b = SuperPeerNetwork.build(n_peers=20, points_per_peer=10, dimensionality=3, seed=5)
        np.testing.assert_array_equal(a.all_points().values, b.all_points().values)

    def test_clustered_dataset_scatters_around_superpeer_centroids(self):
        net = SuperPeerNetwork.build(
            n_peers=40, points_per_peer=50, dimensionality=3, dataset="clustered", seed=1
        )
        # points of one super-peer's peers form a tight cluster
        for sp_id in net.topology.superpeer_ids:
            peer_ids = net.topology.peers_of[sp_id]
            values = np.concatenate([net.peers[p].data.values for p in peer_ids])
            assert values.std(axis=0).max() < 0.3


class TestPreprocessing:
    def test_store_equals_ext_skyline_of_superpeer_data(self, small_network):
        """The end-to-end invariant of section 5.3."""
        for sp_id, sp in small_network.superpeers.items():
            peer_ids = small_network.topology.peers_of[sp_id]
            union = PointSet.concat(
                [small_network.peers[p].data for p in peer_ids]
            )
            expected = extended_skyline_points(union).id_set()
            assert sp.store.points.id_set() == expected

    def test_selectivity_report(self, small_network):
        report = small_network.preprocessing
        assert report.total_points == 1800
        assert 0 < report.sel_sp <= report.sel_p <= 1
        assert report.sel_ratio == pytest.approx(report.sel_sp / report.sel_p)

    def test_selectivity_grows_with_dimensionality(self):
        """The fig 3(a) trend, checked directly."""
        sels = []
        for d in (3, 6, 9):
            net = SuperPeerNetwork.build(
                n_peers=40, points_per_peer=40, dimensionality=d, seed=2
            )
            sels.append(net.preprocessing.sel_p)
        assert sels[0] < sels[1] < sels[2]


class TestFromPartitions:
    def test_explicit_partitions(self, rng):
        topo = Topology.generate(n_peers=6, n_superpeers=2, seed=0)
        partitions = {
            pid: PointSet(rng.random((10, 3)), np.arange(pid * 10, (pid + 1) * 10))
            for peers in topo.peers_of.values()
            for pid in peers
        }
        net = SuperPeerNetwork.from_partitions(topo, partitions)
        assert net.n_peers == 6
        assert net.dimensionality == 3
        assert net.preprocessing is not None

    def test_partition_cover_checked(self, rng):
        topo = Topology.generate(n_peers=6, n_superpeers=2, seed=0)
        with pytest.raises(ValueError, match="exactly"):
            SuperPeerNetwork.from_partitions(topo, {0: PointSet(rng.random((3, 2)))})

    def test_dimensionality_mismatch_checked(self, rng):
        topo = Topology.generate(n_peers=2, n_superpeers=1, seed=0)
        partitions = {
            0: PointSet(rng.random((3, 2))),
            1: PointSet(rng.random((3, 3))),
        }
        with pytest.raises(ValueError, match="mismatched"):
            SuperPeerNetwork.from_partitions(topo, partitions)
