"""Unit tests for the asyncio socket transport (framing, retries, timeouts)."""

from __future__ import annotations

import asyncio

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.p2p.transport import (
    FRAME_HEAD_BYTES,
    FrameDecoder,
    SocketEndpoint,
    TransportConfig,
    TransportError,
    encode_frame,
    read_frame,
)


def run(coro):
    return asyncio.run(coro)


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------
class TestFraming:
    def test_encode_prefixes_length(self):
        frame = encode_frame(b"hello")
        assert len(frame) == FRAME_HEAD_BYTES + 5
        assert frame[FRAME_HEAD_BYTES:] == b"hello"

    def test_decoder_single_frame(self):
        decoder = FrameDecoder()
        assert decoder.feed(encode_frame(b"abc")) == [b"abc"]
        assert decoder.pending_bytes == 0

    def test_decoder_handles_split_and_coalesced_frames(self):
        blobs = [b"first", b"", b"x" * 1000]
        stream = b"".join(encode_frame(b) for b in blobs)
        # feed one byte at a time: worst-case fragmentation
        decoder = FrameDecoder()
        out = []
        for i in range(len(stream)):
            out.extend(decoder.feed(stream[i : i + 1]))
        assert out == blobs
        assert decoder.pending_bytes == 0
        # feed everything at once: maximal coalescing
        decoder = FrameDecoder()
        assert decoder.feed(stream) == blobs

    def test_decoder_rejects_oversized_frame(self):
        decoder = FrameDecoder(max_frame_bytes=16)
        with pytest.raises(TransportError, match="exceeds"):
            decoder.feed(encode_frame(b"y" * 17))

    @settings(max_examples=60, deadline=None)
    @given(
        blobs=st.lists(st.binary(max_size=200), max_size=8),
        chunk=st.integers(min_value=1, max_value=64),
    )
    def test_roundtrip_any_fragmentation(self, blobs, chunk):
        """Frames survive arbitrary payloads cut at arbitrary boundaries."""
        stream = b"".join(encode_frame(b) for b in blobs)
        decoder = FrameDecoder()
        out = []
        for i in range(0, len(stream), chunk):
            out.extend(decoder.feed(stream[i : i + chunk]))
        assert out == blobs
        assert decoder.pending_bytes == 0

    def test_read_frame_roundtrip_and_eof(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(encode_frame(b"payload"))
            reader.feed_eof()
            first = await read_frame(reader)
            second = await read_frame(reader)
            return first, second

        first, second = run(scenario())
        assert first == b"payload"
        assert second is None  # clean EOF at a frame boundary

    def test_read_frame_mid_frame_eof_is_an_error(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(encode_frame(b"payload")[:-2])
            reader.feed_eof()
            await read_frame(reader)

        with pytest.raises(TransportError, match="connection closed"):
            run(scenario())

    def test_read_frame_enforces_max_size(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(encode_frame(b"z" * 100))
            await read_frame(reader, max_frame_bytes=50)

        with pytest.raises(TransportError, match="exceeds"):
            run(scenario())


# ----------------------------------------------------------------------
# configuration
# ----------------------------------------------------------------------
class TestTransportConfig:
    def test_defaults_are_sane(self):
        config = TransportConfig()
        assert config.retries >= 1
        assert config.connect_timeout > 0
        assert config.io_timeout > 0

    def test_from_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRANSPORT_RETRIES", "7")
        monkeypatch.setenv("REPRO_TRANSPORT_IO_TIMEOUT", "1.5")
        monkeypatch.setenv("REPRO_TRANSPORT_HOST", "127.0.0.9")
        config = TransportConfig.from_env()
        assert config.retries == 7
        assert config.io_timeout == 1.5
        assert config.host == "127.0.0.9"

    def test_backoff_is_exponential(self):
        config = TransportConfig(backoff_base=0.1, backoff_factor=2.0)
        delays = [config.backoff_delay(a) for a in range(4)]
        assert delays == [0.1, 0.2, 0.4, 0.8]

    def test_rejects_nonsense(self):
        with pytest.raises(ValueError):
            TransportConfig(retries=-1)
        with pytest.raises(ValueError):
            TransportConfig(io_timeout=-1.0)
        with pytest.raises(ValueError):
            TransportConfig(backoff_factor=0.5)


# ----------------------------------------------------------------------
# endpoint pairs over real sockets
# ----------------------------------------------------------------------
class TestSocketEndpoint:
    def test_two_endpoints_exchange_messages(self):
        async def scenario():
            received = {1: [], 2: []}
            a = SocketEndpoint(1, lambda src, blob: received[1].append((src, blob)))
            b = SocketEndpoint(2, lambda src, blob: received[2].append((src, blob)))
            try:
                addresses = {1: await a.start(), 2: await b.start()}
                a.set_peers(addresses)
                b.set_peers(addresses)
                a.send(2, b"ping")
                b.send(1, b"pong")
                a.send(2, b"again")
                await a.flush()
                await b.flush()
                await asyncio.sleep(0.05)  # let handlers run
            finally:
                await a.close_outbound()
                await b.close_outbound()
                await a.close()
                await b.close()
            return received

        received = run(scenario())
        assert received[2] == [(1, b"ping"), (1, b"again")]
        assert received[1] == [(2, b"pong")]

    def test_stats_count_bytes_both_sides(self):
        async def scenario():
            a = SocketEndpoint(1, lambda src, blob: None)
            b = SocketEndpoint(2, lambda src, blob: None)
            try:
                addresses = {1: await a.start(), 2: await b.start()}
                a.set_peers(addresses)
                a.send(2, b"x" * 100)
                await a.flush()
                await asyncio.sleep(0.05)
            finally:
                await a.close_outbound()
                await b.close_outbound()
                await a.close()
                await b.close()
            return a.stats, b.stats

        sent, got = run(scenario())
        assert sent.messages_sent == 1
        assert sent.payload_bytes_sent == 100
        assert sent.frame_bytes_sent > 100  # length prefix + hello frame
        assert got.messages_received == 1
        assert got.payload_bytes_received == 100

    def test_send_to_unknown_peer_surfaces_through_flush(self):
        async def scenario():
            a = SocketEndpoint(1, lambda src, blob: None)
            try:
                await a.start()
                a.set_peers({1: ("127.0.0.1", 1)})
                a.send(99, b"void")
                await a.flush()
            finally:
                await a.close_outbound()
                await a.close()

        with pytest.raises(TransportError, match="no address known"):
            run(scenario())


# ----------------------------------------------------------------------
# retry / backoff / timeout against injected fakes
# ----------------------------------------------------------------------
class FlakyConnector:
    """A connector that fails ``failures`` times before succeeding."""

    def __init__(self, failures: int, exc: Exception | None = None):
        self.failures = failures
        self.calls = 0
        self.exc = exc if exc is not None else ConnectionRefusedError("flaky")

    async def __call__(self, host, port):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.exc
        reader = asyncio.StreamReader()
        writer = _NullWriter()
        return reader, writer


class _NullWriter:
    """A StreamWriter stand-in that swallows everything."""

    def __init__(self):
        self.data = b""
        self.closed = False

    def write(self, data):
        self.data += data

    async def drain(self):
        pass

    def close(self):
        self.closed = True

    async def wait_closed(self):
        pass

    def is_closing(self):
        return self.closed


class TestRetryBackoff:
    def _endpoint(self, connector, sleeps, retries=3):
        config = TransportConfig(
            retries=retries, backoff_base=0.05, backoff_factor=2.0
        )

        async def sleep(delay):
            sleeps.append(delay)

        endpoint = SocketEndpoint(
            1, lambda src, blob: None, config,
            connector=connector, sleep=sleep,
        )
        endpoint.set_peers({2: ("127.0.0.1", 9)})
        return endpoint

    def test_connect_retries_with_exponential_backoff(self):
        sleeps: list[float] = []
        connector = FlakyConnector(failures=2)

        async def scenario():
            endpoint = self._endpoint(connector, sleeps)
            endpoint.send(2, b"eventually")
            await endpoint.flush()
            await endpoint.close_outbound()
            return endpoint.stats

        stats = run(scenario())
        assert connector.calls == 3  # 2 failures + 1 success
        assert sleeps == [0.05, 0.1]  # backoff doubled between attempts
        assert stats.retries == 2
        assert stats.messages_sent == 1

    def test_connect_gives_up_after_max_retries(self):
        sleeps: list[float] = []
        connector = FlakyConnector(failures=100)

        async def scenario():
            endpoint = self._endpoint(connector, sleeps, retries=3)
            endpoint.send(2, b"never")
            await endpoint.flush()

        # retries=3 means three retries after the initial attempt
        with pytest.raises(TransportError, match="after 4 attempts"):
            run(scenario())
        assert connector.calls == 4
        assert sleeps == [0.05, 0.1, 0.2]  # no sleep after the final failure

    def test_connect_timeout_counts_as_a_retry(self):
        sleeps: list[float] = []

        async def hanging_connector(host, port):
            await asyncio.sleep(3600)

        config = TransportConfig(
            connect_timeout=0.01, retries=2, backoff_base=0.01
        )

        async def sleep(delay):
            sleeps.append(delay)

        async def scenario():
            endpoint = SocketEndpoint(
                1, lambda src, blob: None, config,
                connector=hanging_connector, sleep=sleep,
            )
            endpoint.set_peers({2: ("127.0.0.1", 9)})
            endpoint.send(2, b"stuck")
            await endpoint.flush()

        with pytest.raises(TransportError, match="after 3 attempts"):
            run(scenario())
        assert len(sleeps) == 2

    def test_dropped_connection_triggers_one_reconnect(self):
        class DroppingWriter(_NullWriter):
            """Accepts the hello frame, then drops the connection once."""

            def __init__(self):
                super().__init__()
                self.writes = 0

            def write(self, data):
                self.writes += 1
                if self.writes == 2:  # first payload after the hello
                    raise ConnectionResetError("gone")
                super().write(data)

        writers: list[_NullWriter] = []

        async def connector(host, port):
            writer = DroppingWriter() if not writers else _NullWriter()
            writers.append(writer)
            return asyncio.StreamReader(), writer

        async def scenario():
            endpoint = SocketEndpoint(
                1, lambda src, blob: None, TransportConfig(),
                connector=connector, sleep=lambda d: asyncio.sleep(0),
            )
            endpoint.set_peers({2: ("127.0.0.1", 9)})
            endpoint.send(2, b"resent")
            await endpoint.flush()
            await endpoint.close_outbound()
            return endpoint.stats

        stats = run(scenario())
        assert len(writers) == 2  # original + reconnect
        assert stats.reconnects == 1
        assert stats.messages_sent == 1
        assert b"resent" in writers[1].data

    def test_failed_sender_unblocks_flush_and_surfaces_error(self):
        """A dead channel must not wedge ``flush()`` on queued items."""
        connector = FlakyConnector(failures=100)

        async def scenario():
            config = TransportConfig(retries=1, backoff_base=0.0)
            endpoint = SocketEndpoint(
                1, lambda src, blob: None, config,
                connector=connector, sleep=lambda d: asyncio.sleep(0),
            )
            endpoint.set_peers({2: ("127.0.0.1", 9)})
            endpoint.send(2, b"one")
            endpoint.send(2, b"two")
            endpoint.send(2, b"three")
            await asyncio.wait_for(endpoint.flush(), timeout=5.0)

        with pytest.raises(TransportError):
            run(scenario())
