"""Tests for super-peer failure and network re-organization."""

import pytest

from repro.core.dataset import PointSet
from repro.core.extended_skyline import extended_skyline_points, subspace_skyline_points
from repro.data.workload import Query
from repro.p2p.churn import fail_superpeer
from repro.p2p.network import SuperPeerNetwork
from repro.skypeer.executor import execute_query
from repro.skypeer.protocol import run_protocol
from repro.skypeer.variants import Variant


@pytest.fixture
def network() -> SuperPeerNetwork:
    return SuperPeerNetwork.build(
        n_peers=40, points_per_peer=20, dimensionality=4, n_superpeers=5, seed=44
    )


class TestFailSuperPeer:
    def test_membership_updates(self, network):
        victim = network.topology.superpeer_ids[0]
        orphans = set(network.topology.peers_of[victim])
        event = fail_superpeer(network, victim)
        assert victim not in network.superpeers
        assert victim not in network.topology.adjacency
        assert set(event.orphaned_peers) == orphans
        # every orphan found a new home
        rehomed = {p for peers in network.topology.peers_of.values() for p in peers}
        assert orphans <= rehomed
        assert set(event.adopters) == orphans

    def test_backbone_stays_connected(self, network):
        for _ in range(3):
            victim = network.topology.superpeer_ids[0]
            fail_superpeer(network, victim)
            assert network.topology.is_connected()

    def test_no_data_lost(self, network):
        total_before = len(network.all_points())
        fail_superpeer(network, network.topology.superpeer_ids[0])
        assert len(network.all_points()) == total_before

    def test_queries_stay_exact(self, network):
        fail_superpeer(network, network.topology.superpeer_ids[2])
        initiator = network.topology.superpeer_ids[0]
        for sub in [(0, 2), (1, 2, 3)]:
            truth = subspace_skyline_points(network.all_points(), sub).id_set()
            for variant in Variant:
                got = execute_query(network, Query(subspace=sub, initiator=initiator), variant)
                assert got.result_ids == truth, (sub, variant)

    def test_protocol_engine_agrees_after_failure(self, network):
        fail_superpeer(network, network.topology.superpeer_ids[1])
        query = Query(subspace=(0, 3), initiator=network.topology.superpeer_ids[0])
        truth = subspace_skyline_points(network.all_points(), (0, 3)).id_set()
        assert run_protocol(network, query, Variant.FTPM).result_ids == truth

    def test_adopter_stores_fresh(self, network):
        fail_superpeer(network, network.topology.superpeer_ids[0])
        for sp_id, sp in network.superpeers.items():
            peer_ids = network.topology.peers_of[sp_id]
            union = PointSet.concat([network.peers[p].data for p in peer_ids])
            assert sp.store.points.id_set() == extended_skyline_points(union).id_set()

    def test_cannot_fail_last_superpeer(self):
        net = SuperPeerNetwork.build(
            n_peers=4, points_per_peer=5, dimensionality=3, n_superpeers=1, seed=0
        )
        with pytest.raises(ValueError, match="last super-peer"):
            fail_superpeer(net, net.topology.superpeer_ids[0])

    def test_unknown_superpeer(self, network):
        with pytest.raises(KeyError):
            fail_superpeer(network, 10**9)

    def test_cascading_failures_down_to_one(self, network):
        while network.n_superpeers > 1:
            fail_superpeer(network, network.topology.superpeer_ids[-1])
        assert network.topology.is_connected()
        sub = (0, 1)
        truth = subspace_skyline_points(network.all_points(), sub).id_set()
        query = Query(subspace=sub, initiator=network.topology.superpeer_ids[0])
        assert execute_query(network, query, Variant.RTPM).result_ids == truth
