"""Unit tests for peer churn (join per section 5.3; failure = future work)."""

import numpy as np
import pytest

from repro.core.dataset import PointSet
from repro.core.extended_skyline import subspace_skyline_points
from repro.data.workload import Query
from repro.p2p.churn import fail_peer, join_peer
from repro.p2p.network import SuperPeerNetwork
from repro.skypeer.executor import execute_query
from repro.skypeer.variants import Variant


@pytest.fixture
def network() -> SuperPeerNetwork:
    return SuperPeerNetwork.build(n_peers=30, points_per_peer=20, dimensionality=4, seed=17)


def _fresh_points(rng, n, start_id):
    return PointSet(rng.random((n, 4)), np.arange(start_id, start_id + n))


class TestJoin:
    def test_join_updates_membership(self, network, rng):
        sp = network.topology.superpeer_ids[0]
        before = network.n_peers
        event = join_peer(network, sp, _fresh_points(rng, 25, 10_000))
        assert network.n_peers == before + 1
        assert event.kind == "join"
        assert event.peer_id in network.topology.peers_of[sp]
        assert event.uploaded_points > 0

    def test_join_keeps_queries_exact(self, network, rng):
        sp = network.topology.superpeer_ids[0]
        join_peer(network, sp, _fresh_points(rng, 25, 10_000))
        query = Query(subspace=(0, 2), initiator=network.topology.superpeer_ids[-1])
        truth = subspace_skyline_points(network.all_points(), query.subspace).id_set()
        for variant in Variant:
            got = execute_query(network, query, variant)
            assert got.result_ids == truth, variant

    def test_join_is_incremental(self, network, rng):
        """The merge touches only the store and the new list."""
        sp_id = network.topology.superpeer_ids[0]
        store_before = network.superpeers[sp_id].store_size
        event = join_peer(network, sp_id, _fresh_points(rng, 25, 10_000))
        assert event.merge.input_size <= store_before + event.uploaded_points

    def test_join_refreshes_selectivity(self, network, rng):
        total_before = network.preprocessing.total_points
        join_peer(network, network.topology.superpeer_ids[0], _fresh_points(rng, 25, 10_000))
        assert network.preprocessing.total_points == total_before + 25

    def test_duplicate_peer_id_rejected(self, network, rng):
        with pytest.raises(ValueError, match="already present"):
            join_peer(network, network.topology.superpeer_ids[0],
                      _fresh_points(rng, 5, 10_000), peer_id=0)

    def test_dimensionality_checked(self, network, rng):
        with pytest.raises(ValueError, match="dim"):
            join_peer(network, network.topology.superpeer_ids[0],
                      PointSet(rng.random((5, 3))))


class TestFailure:
    def test_failure_updates_membership(self, network):
        victim = next(iter(network.peers))
        event = fail_peer(network, victim)
        assert event.kind == "fail"
        assert victim not in network.peers
        assert victim not in network.topology.peers_of[event.superpeer_id]

    def test_failure_keeps_queries_exact(self, network):
        victim = next(iter(network.peers))
        fail_peer(network, victim)
        query = Query(subspace=(1, 3), initiator=network.topology.superpeer_ids[0])
        truth = subspace_skyline_points(network.all_points(), query.subspace).id_set()
        for variant in Variant:
            got = execute_query(network, query, variant)
            assert got.result_ids == truth, variant

    def test_unknown_peer_rejected(self, network):
        with pytest.raises(KeyError):
            fail_peer(network, 10**9)

    def test_join_then_fail_roundtrip(self, network, rng):
        sp = network.topology.superpeer_ids[0]
        store_before = network.superpeers[sp].store.points.id_set()
        event = join_peer(network, sp, _fresh_points(rng, 25, 10_000))
        fail_peer(network, event.peer_id)
        assert network.superpeers[sp].store.points.id_set() == store_before
