"""Property-based tests (hypothesis) for the wire format."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.p2p.cost import CostModel
from repro.p2p.wire import QueryMessage, ResultMessage, WireError, decode

finite_floats = st.floats(0, 1e9, allow_nan=False)

# The wire frame is a 16-byte header (magic 2B, version 1B, kind 1B,
# query id 8B, length 4B) followed by the body.  The cost model's
# ``message_header_bytes`` is a single knob covering "everything that
# is not payload", so anchoring the estimate to the concrete layout
# needs one calibration per message kind: a query's non-payload bytes
# are frame + threshold-count/initiator fields minus the threshold the
# model charges separately (16 + 18 - 8 = 26), a result's are frame +
# sender/count/dimensionality fields (16 + 14 = 30).
QUERY_COST = CostModel(message_header_bytes=26)
RESULT_COST = CostModel(message_header_bytes=30)


@given(
    st.integers(0, 2**31 - 1),
    st.lists(st.integers(0, 1000), min_size=1, max_size=16, unique=True),
    st.floats(0, 1e12, allow_nan=False) | st.just(float("inf")),
    st.integers(-(2**40), 2**40),
)
@settings(max_examples=150, deadline=None)
def test_query_roundtrip(query_id, dims, threshold, initiator):
    msg = QueryMessage(
        query_id=query_id,
        subspace=tuple(sorted(dims)),
        threshold=threshold,
        initiator=initiator,
    )
    assert decode(msg.encode()) == msg


@given(
    st.integers(0, 2**31 - 1),
    st.integers(-(2**40), 2**40),
    st.lists(
        st.tuples(
            st.integers(0, 2**40),
            finite_floats,
            st.lists(finite_floats, min_size=3, max_size=3),
        ),
        max_size=25,
    ),
)
@settings(max_examples=100, deadline=None)
def test_result_roundtrip(query_id, sender, rows):
    msg = ResultMessage(
        query_id=query_id,
        sender=sender,
        ids=tuple(r[0] for r in rows),
        f=tuple(r[1] for r in rows),
        coords=tuple(tuple(r[2]) for r in rows),
    )
    back = decode(msg.encode())
    assert back == msg


@given(st.binary(max_size=200))
@settings(max_examples=200, deadline=None)
def test_random_blobs_never_crash(blob):
    """Garbage must raise WireError, never anything else."""
    try:
        decode(blob)
    except WireError:
        pass


@given(st.data())
@settings(max_examples=100, deadline=None)
def test_truncation_always_detected(data):
    msg = QueryMessage(query_id=1, subspace=(0, 2, 5), threshold=0.5, initiator=3)
    blob = msg.encode()
    cut = data.draw(st.integers(0, len(blob) - 1))
    try:
        decoded = decode(blob[:cut])
    except WireError:
        return
    raise AssertionError(f"truncated blob decoded to {decoded}")


# ----------------------------------------------------------------------
# encoded size matches the cost-model estimate
# ----------------------------------------------------------------------
@given(
    st.lists(st.integers(0, 1000), min_size=1, max_size=16, unique=True),
    st.floats(0, 1e12, allow_nan=False) | st.just(float("inf")),
)
@settings(max_examples=100, deadline=None)
def test_query_size_matches_cost_model(dims, threshold):
    msg = QueryMessage(
        query_id=7, subspace=tuple(sorted(dims)), threshold=threshold, initiator=2
    )
    assert len(msg.encode()) == QUERY_COST.query_bytes(len(dims))


@given(
    st.integers(1, 8),
    st.integers(0, 30),
)
@settings(max_examples=100, deadline=None)
def test_result_size_matches_cost_model(k, n):
    rng = np.random.default_rng(n * 31 + k)
    msg = ResultMessage(
        query_id=3,
        sender=1,
        ids=tuple(range(n)),
        f=tuple(float(v) for v in rng.random(n)),
        coords=tuple(tuple(float(v) for v in rng.random(k)) for _ in range(n)),
    )
    assert len(msg.encode()) == RESULT_COST.result_bytes(n, k)


def test_empty_result_roundtrips_at_header_cost():
    msg = ResultMessage(query_id=9, sender=4, ids=(), f=(), coords=())
    blob = msg.encode()
    assert decode(blob) == msg
    assert len(blob) == RESULT_COST.result_bytes(0, 5)  # k is irrelevant at n=0


def test_single_dimension_subspace_roundtrips():
    msg = QueryMessage(query_id=11, subspace=(4,), threshold=0.25, initiator=0)
    blob = msg.encode()
    assert decode(blob) == msg
    assert len(blob) == QUERY_COST.query_bytes(1)


# ----------------------------------------------------------------------
# header corruption is always detected
# ----------------------------------------------------------------------
def _sample_messages():
    return [
        QueryMessage(query_id=5, subspace=(1, 3), threshold=0.75, initiator=2),
        ResultMessage(
            query_id=6, sender=1, ids=(10, 11), f=(0.1, 0.2),
            coords=((0.1, 0.5), (0.2, 0.4)),
        ),
    ]


@given(st.integers(0, 1), st.integers(0, 2), st.integers(1, 255))
@settings(max_examples=100, deadline=None)
def test_magic_or_version_corruption_raises(msg_idx, byte_idx, delta):
    """Flipping any magic/version byte must fail decoding."""
    blob = bytearray(_sample_messages()[msg_idx].encode())
    blob[byte_idx] = (blob[byte_idx] + delta) % 256
    try:
        decode(bytes(blob))
    except WireError:
        return
    raise AssertionError("corrupted magic/version decoded")


@given(st.integers(0, 1), st.integers(0, 255))
@settings(max_examples=100, deadline=None)
def test_unknown_kind_raises(msg_idx, kind):
    """Any kind byte outside the two known kinds must fail decoding."""
    if kind in (1, 2):
        return
    blob = bytearray(_sample_messages()[msg_idx].encode())
    blob[3] = kind
    try:
        decode(bytes(blob))
    except WireError:
        return
    raise AssertionError(f"unknown kind {kind} decoded")


@given(st.integers(0, 1), st.integers(-16, 16).filter(lambda d: d != 0))
@settings(max_examples=100, deadline=None)
def test_length_field_corruption_raises(msg_idx, delta):
    """A header length disagreeing with the body must fail decoding."""
    import struct

    blob = bytearray(_sample_messages()[msg_idx].encode())
    (length,) = struct.unpack_from("<I", blob, 12)
    if length + delta < 0:
        return
    struct.pack_into("<I", blob, 12, length + delta)
    try:
        decode(bytes(blob))
    except WireError:
        return
    raise AssertionError("length-corrupted frame decoded")
