"""Property-based tests (hypothesis) for the wire format."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.p2p.wire import QueryMessage, ResultMessage, WireError, decode

finite_floats = st.floats(0, 1e9, allow_nan=False)


@given(
    st.integers(0, 2**31 - 1),
    st.lists(st.integers(0, 1000), min_size=1, max_size=16, unique=True),
    st.floats(0, 1e12, allow_nan=False) | st.just(float("inf")),
    st.integers(-(2**40), 2**40),
)
@settings(max_examples=150, deadline=None)
def test_query_roundtrip(query_id, dims, threshold, initiator):
    msg = QueryMessage(
        query_id=query_id,
        subspace=tuple(sorted(dims)),
        threshold=threshold,
        initiator=initiator,
    )
    assert decode(msg.encode()) == msg


@given(
    st.integers(0, 2**31 - 1),
    st.integers(-(2**40), 2**40),
    st.lists(
        st.tuples(
            st.integers(0, 2**40),
            finite_floats,
            st.lists(finite_floats, min_size=3, max_size=3),
        ),
        max_size=25,
    ),
)
@settings(max_examples=100, deadline=None)
def test_result_roundtrip(query_id, sender, rows):
    msg = ResultMessage(
        query_id=query_id,
        sender=sender,
        ids=tuple(r[0] for r in rows),
        f=tuple(r[1] for r in rows),
        coords=tuple(tuple(r[2]) for r in rows),
    )
    back = decode(msg.encode())
    assert back == msg


@given(st.binary(max_size=200))
@settings(max_examples=200, deadline=None)
def test_random_blobs_never_crash(blob):
    """Garbage must raise WireError, never anything else."""
    try:
        decode(blob)
    except WireError:
        pass


@given(st.data())
@settings(max_examples=100, deadline=None)
def test_truncation_always_detected(data):
    msg = QueryMessage(query_id=1, subspace=(0, 2, 5), threshold=0.5, initiator=3)
    blob = msg.encode()
    cut = data.draw(st.integers(0, len(blob) - 1))
    try:
        decoded = decode(blob[:cut])
    except WireError:
        return
    raise AssertionError(f"truncated blob decoded to {decoded}")
