"""Unit tests for the super-peer topology."""

import numpy as np
import pytest

from repro.p2p.topology import Topology, superpeer_count_rule


class TestSizingRule:
    def test_five_percent_below_20000(self):
        assert superpeer_count_rule(4000) == 200
        assert superpeer_count_rule(12000) == 600

    def test_one_percent_at_20000_and_above(self):
        assert superpeer_count_rule(20000) == 200
        assert superpeer_count_rule(80000) == 800

    def test_minimum_one(self):
        assert superpeer_count_rule(5) == 1

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            superpeer_count_rule(0)


class TestGeneration:
    def test_connected(self):
        for seed in range(5):
            topo = Topology.generate(n_peers=400, degree=4.0, seed=seed)
            assert topo.is_connected()

    def test_average_degree_near_target(self):
        topo = Topology.generate(n_peers=2000, degree=5.0, seed=1)
        assert abs(topo.average_degree() - 5.0) < 1.0

    def test_superpeer_count_default_rule(self):
        topo = Topology.generate(n_peers=1000, seed=0)
        assert topo.n_superpeers == 50

    def test_explicit_superpeer_count(self):
        topo = Topology.generate(n_peers=100, n_superpeers=7, seed=0)
        assert topo.n_superpeers == 7

    def test_peers_attached_evenly(self):
        topo = Topology.generate(n_peers=103, n_superpeers=10, seed=0)
        sizes = sorted(len(p) for p in topo.peers_of.values())
        assert sizes[0] >= 10 and sizes[-1] <= 11
        assert topo.n_peers == 103

    def test_peer_ids_globally_unique(self):
        topo = Topology.generate(n_peers=60, n_superpeers=6, seed=0)
        all_peers = [p for peers in topo.peers_of.values() for p in peers]
        assert len(all_peers) == len(set(all_peers)) == 60

    def test_deterministic_with_seed(self):
        a = Topology.generate(n_peers=200, seed=5)
        b = Topology.generate(n_peers=200, seed=5)
        assert a.adjacency == b.adjacency

    def test_max_peer_degree_enforced(self):
        with pytest.raises(ValueError, match="DEG_p"):
            Topology.generate(n_peers=1000, n_superpeers=2, max_peer_degree=100, seed=0)

    def test_single_superpeer(self):
        topo = Topology.generate(n_peers=10, n_superpeers=1, seed=0)
        assert topo.adjacency == {0: ()}
        assert topo.is_connected()

    def test_rejects_more_superpeers_than_peers(self):
        with pytest.raises(ValueError):
            Topology.generate(n_peers=3, n_superpeers=5, seed=0)

    def test_adjacency_is_symmetric(self):
        topo = Topology.generate(n_peers=500, seed=2)
        for node, neighbours in topo.adjacency.items():
            for nb in neighbours:
                assert node in topo.adjacency[nb]


class TestHypercube:
    def test_power_of_two_is_exact_hypercube(self):
        topo = Topology.generate_hypercube(n_peers=64, n_superpeers=8)
        assert all(len(ns) == 3 for ns in topo.adjacency.values())
        assert topo.is_connected()

    def test_incomplete_hypercube_connected(self):
        for n in (1, 2, 3, 5, 11, 100):
            topo = Topology.generate_hypercube(n_peers=max(n, n), n_superpeers=n)
            assert topo.is_connected(), n

    def test_diameter_is_logarithmic(self):
        import math

        topo = Topology.generate_hypercube(n_peers=256, n_superpeers=256)
        hops = topo.hops_from(0)
        assert max(hops.values()) <= math.ceil(math.log2(256))

    def test_adjacency_symmetric(self):
        topo = Topology.generate_hypercube(n_peers=23, n_superpeers=23)
        for node, neighbours in topo.adjacency.items():
            for nb in neighbours:
                assert node in topo.adjacency[nb]

    def test_usable_by_network(self):
        from repro.core.extended_skyline import subspace_skyline_points
        from repro.data.workload import Query
        from repro.p2p.network import SuperPeerNetwork
        from repro.skypeer.executor import execute_query
        import numpy as np
        from repro.core.dataset import PointSet

        topo = Topology.generate_hypercube(n_peers=12, n_superpeers=4)
        rng = np.random.default_rng(0)
        partitions = {
            pid: PointSet(rng.random((10, 3)), np.arange(pid * 10, (pid + 1) * 10))
            for peers in topo.peers_of.values()
            for pid in peers
        }
        net = SuperPeerNetwork.from_partitions(topo, partitions)
        query = Query(subspace=(0, 2), initiator=0)
        truth = subspace_skyline_points(net.all_points(), (0, 2)).id_set()
        assert execute_query(net, query, "ftpm").result_ids == truth


class TestRouting:
    @pytest.fixture
    def topo(self) -> Topology:
        return Topology.generate(n_peers=400, seed=3)

    def test_bfs_tree_spans_everything(self, topo):
        root = topo.superpeer_ids[0]
        parent, children = topo.bfs_tree(root)
        assert set(parent) == set(topo.superpeer_ids)
        assert parent[root] is None
        child_count = sum(len(kids) for kids in children.values())
        assert child_count == topo.n_superpeers - 1

    def test_bfs_tree_edges_exist_in_graph(self, topo):
        root = topo.superpeer_ids[0]
        parent, _children = topo.bfs_tree(root)
        for sp, par in parent.items():
            if par is not None:
                assert par in topo.adjacency[sp]

    def test_hops_are_shortest_paths(self, topo):
        root = topo.superpeer_ids[0]
        hops = topo.hops_from(root)
        assert hops[root] == 0
        # hop counts differ by at most 1 across any edge
        for node, neighbours in topo.adjacency.items():
            for nb in neighbours:
                assert abs(hops[node] - hops[nb]) <= 1

    def test_unknown_root_rejected(self, topo):
        with pytest.raises(KeyError):
            topo.bfs_tree(10**9)

    def test_higher_degree_shortens_paths(self):
        """The mechanism behind Figure 4(e)."""
        mean_hops = {}
        for degree in (4, 7):
            topo = Topology.generate(n_peers=4000, degree=float(degree), seed=11)
            hops = topo.hops_from(topo.superpeer_ids[0])
            mean_hops[degree] = np.mean(list(hops.values()))
        assert mean_hops[7] < mean_hops[4]

    def test_superpeer_of_peer(self, topo):
        for sp, peers in topo.peers_of.items():
            if peers:
                assert topo.superpeer_of_peer(peers[0]) == sp
        with pytest.raises(KeyError):
            topo.superpeer_of_peer(10**9)
