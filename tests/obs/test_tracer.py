"""Tracer: span recording, ordering/nesting invariants, runtime switch."""

from __future__ import annotations

import pytest

from repro.obs import Tracer, active_metrics, active_tracer, install, observed, uninstall
from repro.skypeer.executor import Clock


def test_span_records_both_clocks():
    tracer = Tracer()
    start = Clock(comp=1.0, total=2.0, work=5.0)
    end = start.after_compute(0.5, work=3.0)
    span = tracer.span("scan", category="compute", track="sp0", start=start, end=end)
    assert span.interval("comp") == (1.0, 1.5)
    assert span.interval("total") == (2.0, 2.5)
    assert span.interval("nope") is None
    assert tracer.clocks() == ("comp", "total")
    assert tracer.tracks() == ("sp0",)


def test_interval_records_a_single_clock():
    tracer = Tracer()
    tracer.interval("transmit", category="transfer", track="link 0->1",
                    start=0.25, end=0.75, clock="protocol", bytes=42)
    [span] = tracer.spans
    assert span.interval("protocol") == (0.25, 0.75)
    assert span.interval("comp") is None
    assert dict(span.args) == {"bytes": 42}


def test_backwards_spans_are_rejected():
    tracer = Tracer()
    with pytest.raises(ValueError):
        tracer.interval("bad", category="x", track="t", start=1.0, end=0.5)
    assert len(tracer) == 0


def test_validate_accepts_disjoint_and_nested_spans():
    tracer = Tracer()
    tracer.interval("outer", category="c", track="t", start=0.0, end=10.0)
    tracer.interval("inner", category="c", track="t", start=1.0, end=4.0)
    tracer.interval("later", category="c", track="t", start=4.0, end=9.0)
    tracer.interval("other track", category="c", track="u", start=3.0, end=20.0)
    assert tracer.validate() == []


def test_validate_flags_partial_overlap():
    tracer = Tracer()
    tracer.interval("a", category="c", track="t", start=0.0, end=5.0)
    tracer.interval("b", category="c", track="t", start=3.0, end=8.0)
    problems = tracer.validate()
    assert len(problems) == 1
    assert "partially overlaps" in problems[0]


def test_by_track_sorts_by_start_then_longest_first():
    tracer = Tracer()
    tracer.interval("short", category="c", track="t", start=2.0, end=3.0)
    tracer.interval("long", category="c", track="t", start=2.0, end=9.0)
    tracer.interval("first", category="c", track="t", start=0.0, end=1.0)
    names = [s.name for s in tracer.by_track("t", "total")]
    assert names == ["first", "long", "short"]


def test_runtime_switch_defaults_off_and_restores():
    assert active_tracer() is None
    assert active_metrics() is None
    with observed() as (tracer, metrics):
        assert active_tracer() is tracer
        assert active_metrics() is metrics
        with observed() as (inner_tracer, _):
            assert active_tracer() is inner_tracer
        assert active_tracer() is tracer
    assert active_tracer() is None
    assert active_metrics() is None


def test_install_uninstall_roundtrip():
    tracer = Tracer()
    install(tracer=tracer)
    try:
        assert active_tracer() is tracer
        assert active_metrics() is None
    finally:
        uninstall()
    assert active_tracer() is None
