"""End-to-end instrumentation: metrics agree with the query report, and
observability is behavior-neutral when switched off."""

from __future__ import annotations

import math

import pytest

from repro.data.workload import Query
from repro.obs import active_metrics, active_tracer, observed
from repro.p2p.network import SuperPeerNetwork
from repro.skypeer.cache import CachedQueryEngine
from repro.skypeer.executor import execute_query
from repro.skypeer.inspection import execution_report
from repro.skypeer.protocol import run_protocol
from repro.skypeer.variants import Variant

ALL_VARIANTS = ("FTFM", "FTPM", "RTFM", "RTPM", "naive")


@pytest.fixture(scope="module")
def network() -> SuperPeerNetwork:
    return SuperPeerNetwork.build(
        n_peers=48, points_per_peer=20, dimensionality=5, seed=11
    )


@pytest.fixture(scope="module")
def query(network) -> Query:
    return Query(subspace=(0, 2, 4), initiator=network.topology.superpeer_ids[0])


@pytest.mark.parametrize("variant", ALL_VARIANTS)
def test_metrics_totals_match_the_execution_report(network, query, variant):
    """Acceptance criterion: snapshot totals == inspection.py values."""
    with observed() as (_, metrics):
        execution = execute_query(network, query, variant)
    report = execution_report(execution)
    totals = metrics.snapshot()["totals"]
    assert totals["skypeer.comparisons"] == report["comparisons"]
    assert totals["skypeer.volume_bytes"] == report["volume_bytes"]
    assert totals["skypeer.messages"] == report["messages"]
    assert totals["skypeer.result_points"] == report["result_points"]
    assert totals["skypeer.queries"] == 1
    if variant != "naive":
        scanned = sum(
            value
            for name, labels, value in metrics.counters("skypeer.points_examined")
            if dict(labels)["phase"] == "scan"
        )
        assert scanned == sum(
            t["examined"] for t in report["per_superpeer"].values()
        )


@pytest.mark.parametrize("variant", ALL_VARIANTS)
def test_traced_schedule_is_well_formed(network, query, variant):
    with observed() as (tracer, _):
        execution = execute_query(network, query, variant)
    assert tracer.validate() == []
    # The root "query" span covers the whole schedule on both clocks.
    [root] = [s for s in tracer.spans if s.track == "query"]
    assert root.interval("comp") == (0.0, execution.computational_time)
    assert root.interval("total") == (0.0, execution.total_time)
    scans = [s for s in tracer.spans if s.category == "compute"]
    assert len(scans) >= network.n_superpeers


def test_no_observer_means_no_recording(network, query):
    assert active_tracer() is None and active_metrics() is None
    with observed() as (tracer, metrics):
        pass  # nothing executed while observed
    execute_query(network, query, "FTPM")
    assert len(tracer) == 0
    assert len(metrics) == 0


@pytest.mark.parametrize("variant", ALL_VARIANTS)
def test_observability_is_behavior_neutral(network, query, variant):
    """Acceptance criterion: identical Clock.work with a tracer installed."""
    bare = execute_query(network, query, variant)
    with observed():
        observed_run = execute_query(network, query, variant)
    assert observed_run.critical_path_examined == bare.critical_path_examined
    assert observed_run.comparisons == bare.comparisons
    assert observed_run.volume_bytes == bare.volume_bytes
    assert observed_run.message_count == bare.message_count
    assert observed_run.result_ids == bare.result_ids
    assert observed_run.initial_threshold == bare.initial_threshold


def test_no_tracer_overhead_smoke(network, query, monkeypatch):
    """With observability off, the query path must never touch obs code."""
    from repro.obs import metrics as metrics_module
    from repro.obs import tracer as tracer_module

    def _boom(*args, **kwargs):  # pragma: no cover - failure path
        raise AssertionError("obs recording invoked with no observer installed")

    monkeypatch.setattr(tracer_module.Tracer, "span", _boom)
    monkeypatch.setattr(tracer_module.Tracer, "interval", _boom)
    monkeypatch.setattr(metrics_module.MetricsRegistry, "counter", _boom)
    monkeypatch.setattr(metrics_module.MetricsRegistry, "histogram", _boom)
    assert active_tracer() is None and active_metrics() is None
    execution = execute_query(network, query, "FTPM")
    run_protocol(network, query, "FTPM")
    assert len(execution.result) >= 1


def test_protocol_metrics_match_the_outcome(network, query):
    with observed() as (tracer, metrics):
        outcome = run_protocol(network, query, "FTPM")
    totals = metrics.snapshot()["totals"]
    assert totals["protocol.messages"] == outcome.message_count
    assert totals["protocol.volume_bytes"] == outcome.volume_bytes
    assert totals["protocol.query_messages"] == outcome.query_messages
    assert totals["protocol.events"] == outcome.events
    assert totals.get("protocol.duplicate_replies", 0) == outcome.duplicate_replies
    assert tracer.validate() == []
    # Protocol spans live on their own single real timeline.
    assert "protocol" in tracer.clocks()


def test_cache_hit_and_miss_counters(network):
    engine = CachedQueryEngine(network)
    query = Query(subspace=(1, 3), initiator=network.topology.superpeer_ids[0])
    with observed() as (_, metrics):
        engine.execute(query, "FTPM")
        engine.execute(query, "FTPM")
    assert metrics.total("cache.misses") == engine.misses
    assert metrics.total("cache.hits") == engine.hits
    assert metrics.total("cache.hits") > 0


def test_preprocessing_records_spans_and_counters():
    with observed() as (tracer, metrics):
        network = SuperPeerNetwork.build(
            n_peers=12, points_per_peer=10, dimensionality=4, seed=5
        )
    report = network.preprocessing
    assert metrics.total("preprocess.total_points") == report.total_points
    assert metrics.total("preprocess.uploaded_points") == report.peer_skyline_points
    assert metrics.total("preprocess.store_points") == report.superpeer_store_points
    assert metrics.total("preprocess.upload_bytes") == report.upload_bytes
    categories = {span.category for span in tracer.spans}
    assert categories == {"preprocess"}
    assert "preprocess" in tracer.clocks()
    assert tracer.validate() == []


def test_bench_harness_aggregates_per_sweep_metrics():
    from repro.bench.config import ExperimentConfig
    from repro.bench.harness import build_network, make_queries, run_queries

    config = ExperimentConfig(
        n_peers=8, points_per_peer=10, dimensionality=4,
        query_dimensionality=2, seed=2,
    )
    net = build_network(config, use_cache=False)
    queries = make_queries(net, config, n_queries=2)
    with observed() as (_, metrics):
        stats = run_queries(net, queries, ["FTPM", "naive"])
    for variant in (Variant.FTPM, Variant.NAIVE):
        label = variant.value
        assert metrics.counter("bench.queries", variant=label).value == 2
        expected_volume = stats[variant].mean_volume_kb * 1024 * 2
        assert math.isclose(
            metrics.counter("bench.volume_bytes", variant=label).value,
            expected_volume, rel_tol=1e-9, abs_tol=1e-6,
        )
        assert metrics.histogram("bench.total_seconds", variant=label).count == 1
