"""Merging worker registries into the parent (repro.parallel support)."""

from __future__ import annotations

import pytest

from repro.obs.metrics import Histogram, MetricsRegistry


def _registry(counter_values: dict[str, float], observations=()) -> MetricsRegistry:
    reg = MetricsRegistry()
    for name, value in counter_values.items():
        reg.counter(name, variant="FTPM").inc(value)
    for value in observations:
        reg.histogram("latency").observe(value)
    return reg


class TestHistogramMergeStats:
    def test_combines_summaries(self):
        h = Histogram()
        h.observe(1.0)
        h.observe(3.0)
        h.merge_stats(count=2, total=10.0, minimum=0.5, maximum=9.5)
        assert h.count == 4
        assert h.total == 14.0
        assert h.min == 0.5
        assert h.max == 9.5
        assert h.mean == 3.5

    def test_empty_source_is_a_no_op(self):
        h = Histogram()
        h.observe(2.0)
        h.merge_stats(count=0, total=0.0, minimum=None, maximum=None)
        assert h.count == 1
        assert h.min == h.max == 2.0

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            Histogram().merge_stats(count=-1, total=0.0, minimum=None, maximum=None)


class TestMergeSnapshot:
    def test_counters_add(self):
        parent = _registry({"queries": 2.0, "bytes": 100.0})
        worker = _registry({"queries": 3.0, "messages": 7.0})
        parent.merge_snapshot(worker.snapshot())
        assert parent.total("queries") == 5.0
        assert parent.total("bytes") == 100.0
        assert parent.total("messages") == 7.0

    def test_labels_are_respected(self):
        parent = MetricsRegistry()
        parent.counter("queries", variant="FTPM").inc(1)
        worker = MetricsRegistry()
        worker.counter("queries", variant="RTPM").inc(2)
        parent.merge_snapshot(worker.snapshot())
        assert parent.counter("queries", variant="FTPM").value == 1
        assert parent.counter("queries", variant="RTPM").value == 2
        assert parent.total("queries") == 3

    def test_histograms_combine(self):
        parent = _registry({}, observations=[1.0, 2.0])
        worker = _registry({}, observations=[0.5, 4.0])
        parent.merge_snapshot(worker.snapshot())
        h = parent.histogram("latency")
        assert h.count == 4
        assert h.total == 7.5
        assert h.min == 0.5
        assert h.max == 4.0

    def test_empty_snapshot_is_a_no_op(self):
        parent = _registry({"queries": 2.0})
        parent.merge_snapshot(MetricsRegistry().snapshot())
        assert parent.total("queries") == 2.0
        parent.merge_snapshot({})
        assert parent.total("queries") == 2.0

    def test_merge_is_commutative(self):
        a1 = _registry({"x": 1.0, "y": 2.0}, observations=[1.0])
        b1 = _registry({"x": 10.0, "z": 5.0}, observations=[3.0, 0.1])
        a2 = _registry({"x": 10.0, "z": 5.0}, observations=[3.0, 0.1])
        b2 = _registry({"x": 1.0, "y": 2.0}, observations=[1.0])
        a1.merge(b1)
        a2.merge(b2)
        assert a1.snapshot() == a2.snapshot()

    def test_merge_registry_helper(self):
        parent = _registry({"queries": 1.0})
        parent.merge(_registry({"queries": 4.0}))
        assert parent.total("queries") == 5.0
