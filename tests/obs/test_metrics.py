"""MetricsRegistry: counters, histograms, labels, snapshots."""

from __future__ import annotations

import json

import pytest

from repro.obs import MetricsRegistry


def test_counter_identity_by_name_and_labels():
    registry = MetricsRegistry()
    a = registry.counter("hits", superpeer=1)
    b = registry.counter("hits", superpeer=1)
    c = registry.counter("hits", superpeer=2)
    assert a is b
    assert a is not c
    a.inc()
    a.inc(2)
    c.inc(5)
    assert a.value == 3
    assert registry.total("hits") == 8


def test_label_order_does_not_matter():
    registry = MetricsRegistry()
    registry.counter("m", variant="FTPM", phase="scan").inc()
    assert registry.counter("m", phase="scan", variant="FTPM").value == 1


def test_counters_reject_negative_increments():
    with pytest.raises(ValueError):
        MetricsRegistry().counter("m").inc(-1)


def test_histogram_summary_statistics():
    registry = MetricsRegistry()
    h = registry.histogram("latency", variant="FTPM")
    for value in (2.0, 4.0, 9.0):
        h.observe(value)
    assert h.count == 3
    assert h.total == 15.0
    assert h.min == 2.0
    assert h.max == 9.0
    assert h.mean == 5.0


def test_snapshot_is_json_serializable_and_complete():
    registry = MetricsRegistry()
    registry.counter("messages", kind="query").inc(3)
    registry.counter("messages", kind="result").inc(4)
    registry.counter("bytes").inc(1024)
    registry.histogram("seconds", clock="comp").observe(0.5)
    snapshot = json.loads(json.dumps(registry.snapshot()))
    assert snapshot["totals"] == {"messages": 7, "bytes": 1024}
    by_kind = {
        tuple(sorted(entry["labels"].items())): entry["value"]
        for entry in snapshot["counters"]["messages"]
    }
    assert by_kind == {(("kind", "query"),): 3, (("kind", "result"),): 4}
    [hist] = snapshot["histograms"]["seconds"]
    assert hist["count"] == 1 and hist["sum"] == 0.5


def test_format_text_one_line_per_instrument():
    registry = MetricsRegistry()
    registry.counter("skypeer.messages", kind="query", variant="FTPM").inc(7)
    registry.histogram("skypeer.query_seconds").observe(1.25)
    text = registry.format_text()
    lines = text.splitlines()
    assert len(lines) == 2
    assert 'skypeer.messages{kind="query",variant="FTPM"} 7' in lines
    assert any(line.startswith("skypeer.query_seconds count=1") for line in lines)


def test_reset_clears_everything():
    registry = MetricsRegistry()
    registry.counter("a").inc()
    registry.histogram("b").observe(1)
    assert len(registry) == 2
    registry.reset()
    assert len(registry) == 0
    assert registry.total("a") == 0
