"""Chrome-trace export: schema validity and JSON round-trip."""

from __future__ import annotations

import json

from repro.data.workload import Query
from repro.obs import Tracer, chrome_trace, chrome_trace_json, observed, write_chrome_trace
from repro.p2p.network import SuperPeerNetwork
from repro.skypeer.executor import execute_query

REQUIRED_X_KEYS = {"name", "cat", "ph", "ts", "dur", "pid", "tid", "args"}


def _traced_query(variant="FTPM", seed=7):
    network = SuperPeerNetwork.build(
        n_peers=40, points_per_peer=15, dimensionality=4, seed=seed
    )
    query = Query(subspace=(0, 2), initiator=network.topology.superpeer_ids[0])
    with observed() as (tracer, metrics):
        execution = execute_query(network, query, variant)
    return tracer, metrics, execution


def _validate_chrome_trace(trace: dict) -> None:
    """The schema checks the acceptance criterion refers to."""
    assert set(trace) >= {"traceEvents", "displayTimeUnit"}
    events = trace["traceEvents"]
    assert events, "empty trace"
    phases = {event["ph"] for event in events}
    # Only complete (X) and metadata (M) events: nothing can be unmatched.
    assert phases <= {"X", "M"}
    xs = [event for event in events if event["ph"] == "X"]
    assert xs, "no span events"
    for event in xs:
        assert REQUIRED_X_KEYS <= set(event), event
        assert event["ts"] >= 0
        assert event["dur"] >= 0
        assert isinstance(event["pid"], int) and event["pid"] >= 1
        assert isinstance(event["tid"], int) and event["tid"] >= 1
    timestamps = [event["ts"] for event in xs]
    assert timestamps == sorted(timestamps), "X events must be ts-monotone"
    metadata = [event for event in events if event["ph"] == "M"]
    names = {event["name"] for event in metadata}
    assert {"process_name", "thread_name"} <= names


def test_export_round_trips_through_json():
    tracer, _, _ = _traced_query()
    loaded = json.loads(chrome_trace_json(tracer))
    _validate_chrome_trace(loaded)
    assert loaded == chrome_trace(tracer)


def test_every_variant_exports_a_valid_trace():
    for variant in ("FTFM", "FTPM", "RTFM", "RTPM", "naive"):
        tracer, _, _ = _traced_query(variant)
        _validate_chrome_trace(chrome_trace(tracer))


def test_write_chrome_trace_loads_from_disk(tmp_path):
    tracer, _, _ = _traced_query()
    path = tmp_path / "query-trace.json"
    write_chrome_trace(str(path), tracer, indent=2)
    with open(path, encoding="utf-8") as handle:
        _validate_chrome_trace(json.load(handle))


def test_clocks_become_processes_and_tracks_become_threads():
    tracer, _, _ = _traced_query()
    trace = chrome_trace(tracer)
    process_names = {
        event["args"]["name"]
        for event in trace["traceEvents"]
        if event["ph"] == "M" and event["name"] == "process_name"
    }
    assert process_names == {"comp clock", "total clock"}
    thread_names = {
        event["args"]["name"]
        for event in trace["traceEvents"]
        if event["ph"] == "M" and event["name"] == "thread_name"
    }
    assert set(tracer.tracks()) == thread_names


def test_transfers_have_zero_extent_on_the_computational_clock():
    tracer, _, _ = _traced_query("FTPM")
    trace = chrome_trace(tracer)
    comp_pid = next(
        event["pid"]
        for event in trace["traceEvents"]
        if event["ph"] == "M"
        and event["name"] == "process_name"
        and event["args"]["name"] == "comp clock"
    )
    transfer_durs = [
        event["dur"]
        for event in trace["traceEvents"]
        if event["ph"] == "X"
        and event["cat"] == "transfer"
        and event["pid"] == comp_pid
    ]
    assert transfer_durs and all(dur == 0 for dur in transfer_durs)


def test_empty_tracer_exports_an_empty_but_valid_object():
    trace = chrome_trace(Tracer())
    assert trace["traceEvents"] == []
    assert json.loads(chrome_trace_json(Tracer()))["traceEvents"] == []
