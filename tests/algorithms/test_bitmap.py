"""Unit tests for the Bitmap skyline."""

import numpy as np

from repro.algorithms.bitmap import BitmapIndex, bitmap_skyline
from repro.core.dataset import PointSet
from tests.conftest import brute_force_skyline_ids


class TestBitmapIndex:
    def test_slices(self):
        index = BitmapIndex(np.array([[1.0], [2.0], [3.0]]))
        assert index.leq_slice(0, 2.0).tolist() == [True, True, False]
        assert index.lt_slice(0, 2.0).tolist() == [True, False, False]

    def test_is_skyline(self):
        values = np.array([[1.0, 3.0], [2.0, 2.0], [3.0, 3.0]])
        index = BitmapIndex(values)
        assert index.is_skyline(values[0])
        assert index.is_skyline(values[1])
        assert not index.is_skyline(values[2])  # dominated by (2,2)

    def test_point_never_dominates_itself(self):
        values = np.array([[1.0, 1.0]])
        index = BitmapIndex(values)
        assert index.is_skyline(values[0])

    def test_strict_mode_is_ext_domination(self):
        values = np.array([[1.0, 2.0], [1.0, 3.0], [0.5, 1.0]])
        index = BitmapIndex(values)
        # (1,3) shares x with (1,2): dominated but not ext-dominated by it;
        # (0.5,1) ext-dominates both (1,2)... no: 0.5<1, 1<2 -> yes for (1,2)
        assert not index.is_skyline(values[0], strict=True)
        assert not index.is_skyline(values[1], strict=True)
        assert index.is_skyline(values[2], strict=True)


class TestBitmapSkyline:
    def test_matches_brute_force(self, rng):
        points = PointSet(rng.random((150, 4)))
        for sub in [None, (2,), (1, 3), (0, 1, 2, 3)]:
            expected = brute_force_skyline_ids(points, sub or (0, 1, 2, 3))
            assert bitmap_skyline(points, sub).id_set() == expected

    def test_strict_matches_brute_force(self, rng):
        values = rng.integers(0, 4, size=(100, 3)).astype(float)
        points = PointSet(values)
        expected = brute_force_skyline_ids(points, (0, 1, 2), strict=True)
        assert bitmap_skyline(points, strict=True).id_set() == expected

    def test_preserves_input_order(self, rng):
        points = PointSet(rng.random((60, 3)))
        result = bitmap_skyline(points)
        positions = [int(np.where(points.ids == i)[0][0]) for i in result.ids]
        assert positions == sorted(positions)

    def test_empty_input(self):
        assert len(bitmap_skyline(PointSet.empty(2))) == 0

    def test_duplicates_kept(self):
        points = PointSet(np.array([[0.5, 0.5], [0.5, 0.5]]))
        assert len(bitmap_skyline(points)) == 2
