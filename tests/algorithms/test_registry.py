"""Unit tests for the algorithm registry and cross-validation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import ALGORITHMS, compute_skyline
from repro.core.dataset import PointSet
from repro.core.extended_skyline import subspace_skyline_points


class TestRegistry:
    def test_all_algorithms_registered(self):
        assert set(ALGORITHMS) == {"bnl", "sfs", "dnc", "bbs", "bitmap", "index"}

    def test_unknown_algorithm(self, rng):
        points = PointSet(rng.random((5, 2)))
        with pytest.raises(ValueError, match="unknown algorithm"):
            compute_skyline(points, algorithm="quicksky")

    def test_dispatch(self, rng):
        points = PointSet(rng.random((50, 3)))
        for name in ALGORITHMS:
            got = compute_skyline(points, (0, 2), algorithm=name)
            assert got.id_set() == subspace_skyline_points(points, (0, 2)).id_set()


class TestCrossValidation:
    """All centralized algorithms and the threshold machinery agree."""

    @given(
        st.integers(0, 2**31 - 1),
        st.integers(2, 5),
        st.sampled_from([20, 150, 400]),
    )
    @settings(max_examples=15, deadline=None)
    def test_agreement_on_random_data(self, seed, d, n):
        rng = np.random.default_rng(seed)
        points = PointSet(rng.random((n, d)))
        sub = tuple(range(d - 1))
        reference = subspace_skyline_points(points, sub).id_set()
        for name in ALGORITHMS:
            assert compute_skyline(points, sub, algorithm=name).id_set() == reference

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_agreement_in_strict_mode(self, seed):
        rng = np.random.default_rng(seed)
        values = rng.integers(0, 4, size=(120, 3)).astype(float)
        points = PointSet(values)
        results = {
            name: compute_skyline(points, strict=True, algorithm=name).id_set()
            for name in ALGORITHMS
        }
        assert len(set(results.values())) == 1
