"""Unit tests for Divide & Conquer."""

import numpy as np

from repro.algorithms.dnc import divide_and_conquer
from repro.core.dataset import PointSet
from tests.conftest import brute_force_skyline_ids


class TestDnC:
    def test_matches_brute_force_small(self, rng):
        points = PointSet(rng.random((60, 3)))  # below the base case
        expected = brute_force_skyline_ids(points, (0, 1, 2))
        assert divide_and_conquer(points).id_set() == expected

    def test_matches_brute_force_recursive(self, rng):
        points = PointSet(rng.random((300, 3)))  # forces recursion
        expected = brute_force_skyline_ids(points, (0, 1, 2))
        assert divide_and_conquer(points).id_set() == expected

    def test_subspaces(self, rng):
        points = PointSet(rng.random((200, 5)))
        for sub in [(0,), (1, 4), (0, 2, 3)]:
            expected = brute_force_skyline_ids(points, sub)
            assert divide_and_conquer(points, sub).id_set() == expected

    def test_strict_mode(self, rng):
        points = PointSet(rng.random((200, 3)))
        expected = brute_force_skyline_ids(points, (0, 1, 2), strict=True)
        assert divide_and_conquer(points, strict=True).id_set() == expected

    def test_split_dimension_ties(self, rng):
        """The regression the two-pass merge exists for: many points tie
        on the split dimension, letting 'high' points dominate 'low' ones."""
        values = np.column_stack(
            [np.full(200, 0.5), rng.random(200), rng.random(200)]
        )
        points = PointSet(values)
        expected = brute_force_skyline_ids(points, (0, 1, 2))
        assert divide_and_conquer(points).id_set() == expected

    def test_all_identical_points(self):
        points = PointSet(np.tile([0.3, 0.3], (150, 1)))
        assert len(divide_and_conquer(points)) == 150

    def test_empty_input(self):
        assert len(divide_and_conquer(PointSet.empty(2))) == 0
