"""Regression: dominance margins that underflow the sort key's sum.

Found by hypothesis: with ``p = (tiny, 0, 0, 1)`` and ``q = (0, 0, 0, 1)``
(``tiny`` denormal-ish), ``q`` dominates ``p`` but both coordinate sums
round to exactly ``1.0``, so sum-sorted scans (skyline_mask, SFS, D&C's
base case, BBS's mindist order) could visit the dominated point first
and keep it.  All sum-sorted paths now resolve equal-sum groups with a
pairwise pass; this file pins the fix across every algorithm.
"""

import numpy as np
import pytest

from repro.algorithms import ALGORITHMS, compute_skyline
from repro.core.dataset import PointSet
from repro.core.dominance import extended_skyline_mask, skyline_mask
from repro.core.extended_skyline import subspace_skyline_points

TINY = 1.17549435e-38  # smallest normal float32; vanishes in 1.0 + x


@pytest.fixture
def tie_points() -> PointSet:
    return PointSet(
        np.array(
            [
                [TINY, 0.0, 0.0, 1.0],  # dominated by the next row
                [0.0, 0.0, 0.0, 1.0],
            ]
        ),
        np.array([0, 1]),
    )


class TestFloatTieRegression:
    def test_skyline_mask(self, tie_points):
        assert skyline_mask(tie_points.values, (0, 3)).tolist() == [False, True]

    def test_extended_mask(self, tie_points):
        # strict domination also holds on dimension 0 only partially:
        # (0,1) vs (tiny,1): second dim ties -> NOT ext-dominated.
        assert extended_skyline_mask(tie_points.values, (0, 3)).tolist() == [True, True]

    def test_sums_really_tie(self, tie_points):
        """The precondition of the bug: both float sums are identical."""
        sums = tie_points.values[:, [0, 3]].sum(axis=1)
        assert sums[0] == sums[1] == 1.0

    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_all_algorithms(self, tie_points, name):
        got = compute_skyline(tie_points, (0, 3), algorithm=name)
        assert got.id_set() == {1}, name

    def test_oracle_helper(self, tie_points):
        assert subspace_skyline_points(tie_points, (0, 3)).id_set() == {1}

    def test_reversed_order(self):
        """Same case with the dominator first (must also work)."""
        points = PointSet(
            np.array([[0.0, 0.0, 0.0, 1.0], [TINY, 0.0, 0.0, 1.0]]),
            np.array([0, 1]),
        )
        for name in ALGORITHMS:
            assert compute_skyline(points, (0, 3), algorithm=name).id_set() == {0}, name

    def test_longer_tie_chains(self):
        """A chain of vanishing margins within one sum group."""
        rows = [[k * TINY, 0.0, 1.0] for k in (3, 2, 1, 0)]
        points = PointSet(np.array(rows), np.arange(4))
        for name in ALGORITHMS:
            assert compute_skyline(points, (0, 2), algorithm=name).id_set() == {3}, name

    def test_merge_path_still_exact(self, tie_points):
        """The case that originally failed: partition + merge."""
        from repro.core.local_skyline import local_subspace_skyline
        from repro.core.merging import merge_sorted_skylines
        from repro.core.store import SortedByF

        parts = [
            PointSet(tie_points.values[i::2], tie_points.ids[i::2]) for i in range(2)
        ]
        lists = [
            local_subspace_skyline(SortedByF.from_points(p), (0, 3)).result
            for p in parts
        ]
        merged = merge_sorted_skylines(lists, (0, 3))
        assert merged.points.id_set() == {1}
