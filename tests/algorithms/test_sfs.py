"""Unit tests for Sort-Filter-Skyline."""

import numpy as np

from repro.algorithms.sfs import sort_filter_skyline
from repro.core.dataset import PointSet
from tests.conftest import brute_force_skyline_ids


class TestSFS:
    def test_matches_brute_force(self, rng):
        points = PointSet(rng.random((150, 4)))
        for sub in [None, (2,), (0, 3), (0, 1, 2, 3)]:
            expected = brute_force_skyline_ids(points, sub or (0, 1, 2, 3))
            assert sort_filter_skyline(points, sub).id_set() == expected

    def test_strict_mode(self, rng):
        points = PointSet(rng.random((100, 4)))
        expected = brute_force_skyline_ids(points, (0, 1, 2, 3), strict=True)
        assert sort_filter_skyline(points, strict=True).id_set() == expected

    def test_preserves_input_order(self, rng):
        points = PointSet(rng.random((50, 3)))
        result = sort_filter_skyline(points)
        positions = [int(np.where(points.ids == i)[0][0]) for i in result.ids]
        assert positions == sorted(positions)

    def test_empty_input(self):
        assert len(sort_filter_skyline(PointSet.empty(2))) == 0

    def test_no_eviction_invariant(self, rng):
        """After sum-sorting, no point dominates an earlier one — SFS's
        core property.  Verified directly on random data."""
        from repro.core.dominance import dominates

        values = rng.random((80, 3))
        order = np.argsort(values.sum(axis=1), kind="stable")
        ordered = values[order]
        for i in range(len(ordered)):
            for j in range(i + 1, min(i + 10, len(ordered))):
                assert not dominates(ordered[j], ordered[i])

    def test_ties_on_integer_grid(self, rng):
        values = rng.integers(0, 3, size=(80, 3)).astype(float)
        points = PointSet(values)
        expected = brute_force_skyline_ids(points, (0, 1, 2))
        assert sort_filter_skyline(points).id_set() == expected
