"""Unit tests for Branch-and-Bound Skyline (BBS)."""

import numpy as np
import pytest

from repro.algorithms.bbs import bbs_iter, branch_and_bound_skyline
from repro.core.dataset import PointSet
from tests.conftest import brute_force_skyline_ids


class TestBBS:
    def test_matches_brute_force(self, rng):
        points = PointSet(rng.random((200, 4)))
        for sub in [None, (1,), (0, 3), (0, 1, 2, 3)]:
            expected = brute_force_skyline_ids(points, sub or (0, 1, 2, 3))
            assert branch_and_bound_skyline(points, sub).id_set() == expected

    def test_strict_mode(self, rng):
        points = PointSet(rng.random((150, 3)))
        expected = brute_force_skyline_ids(points, (0, 1, 2), strict=True)
        assert branch_and_bound_skyline(points, strict=True).id_set() == expected

    def test_progressive_order_is_mindist(self, rng):
        """BBS emits skyline points in ascending L1 mindist order —
        the 'progressive' property of the original paper."""
        points = PointSet(rng.random((150, 3)))
        sums = [float(coords.sum()) for _i, coords in bbs_iter(points, [0, 1, 2])]
        assert sums == sorted(sums)

    def test_first_emitted_is_min_sum_skyline_point(self, rng):
        points = PointSet(rng.random((100, 2)))
        first_pos, coords = next(bbs_iter(points, [0, 1]))
        sums = points.values.sum(axis=1)
        assert sums[first_pos] == pytest.approx(sums.min())

    def test_empty_input(self):
        assert len(branch_and_bound_skyline(PointSet.empty(3))) == 0

    def test_duplicates_kept(self):
        points = PointSet(np.array([[0.4, 0.4], [0.4, 0.4], [0.9, 0.9]]))
        assert len(branch_and_bound_skyline(points)) == 2

    def test_ties_on_integer_grid(self, rng):
        values = rng.integers(0, 3, size=(120, 3)).astype(float)
        points = PointSet(values)
        expected = brute_force_skyline_ids(points, (0, 1, 2))
        assert branch_and_bound_skyline(points).id_set() == expected

    def test_small_fanout_tree(self, rng):
        """Deep trees (tiny max_entries) exercise subtree pruning."""
        points = PointSet(rng.random((300, 3)))
        expected = brute_force_skyline_ids(points, (0, 1, 2))
        assert branch_and_bound_skyline(points, max_entries=4).id_set() == expected
