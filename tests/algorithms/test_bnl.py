"""Unit tests for Block Nested Loops."""

import numpy as np

from repro.algorithms.bnl import block_nested_loops
from repro.core.dataset import PointSet
from tests.conftest import brute_force_skyline_ids


class TestBNL:
    def test_matches_brute_force(self, rng):
        points = PointSet(rng.random((150, 4)))
        for sub in [None, (0,), (1, 3), (0, 1, 2, 3)]:
            expected = brute_force_skyline_ids(points, sub or (0, 1, 2, 3))
            assert block_nested_loops(points, sub).id_set() == expected

    def test_strict_mode(self, rng):
        points = PointSet(rng.random((100, 4)))
        expected = brute_force_skyline_ids(points, (0, 1, 2, 3), strict=True)
        assert block_nested_loops(points, strict=True).id_set() == expected

    def test_empty_input(self):
        assert len(block_nested_loops(PointSet.empty(3))) == 0

    def test_single_point(self):
        points = PointSet(np.array([[0.5, 0.5]]))
        assert len(block_nested_loops(points)) == 1

    def test_window_eviction(self):
        """A later point must evict dominated earlier window entries."""
        points = PointSet(
            np.array([[0.9, 0.9], [0.1, 0.1]]), np.array([0, 1])
        )
        assert block_nested_loops(points).id_set() == {1}

    def test_duplicates_kept(self):
        points = PointSet(np.array([[0.5, 0.5], [0.5, 0.5]]))
        assert len(block_nested_loops(points)) == 2

    def test_ties_on_integer_grid(self, rng):
        values = rng.integers(0, 3, size=(80, 3)).astype(float)
        points = PointSet(values)
        expected = brute_force_skyline_ids(points, (0, 1, 2))
        assert block_nested_loops(points).id_set() == expected
