"""Unit tests for the Index method."""

import numpy as np

from repro.algorithms.index_method import index_method_skyline
from repro.core.dataset import PointSet
from tests.conftest import brute_force_skyline_ids


class TestIndexMethod:
    def test_matches_brute_force(self, rng):
        points = PointSet(rng.random((200, 4)))
        for sub in [None, (0,), (1, 2), (0, 1, 2, 3)]:
            expected = brute_force_skyline_ids(points, sub or (0, 1, 2, 3))
            assert index_method_skyline(points, sub).id_set() == expected

    def test_strict_mode(self, rng):
        values = rng.integers(0, 4, size=(120, 3)).astype(float)
        points = PointSet(values)
        expected = brute_force_skyline_ids(points, (0, 1, 2), strict=True)
        assert index_method_skyline(points, strict=True).id_set() == expected

    def test_early_termination_on_clustered_corner(self, rng):
        """A point near the origin should terminate the scan quickly —
        the result must still be exact."""
        values = np.vstack([
            np.full((1, 3), 0.01),        # super point
            0.5 + 0.5 * rng.random((200, 3)),  # everything else is far
        ])
        points = PointSet(values)
        got = index_method_skyline(points)
        assert got.id_set() == brute_force_skyline_ids(points, (0, 1, 2))
        assert got.id_set() == {0}

    def test_tie_eviction_across_lists(self):
        """Equal min values across lists can process a dominated point
        before its dominator; eviction must clean it up."""
        points = PointSet(
            np.array([[0.1, 0.9], [0.1, 0.5]]), np.array([0, 1])
        )
        assert index_method_skyline(points).id_set() == {1}

    def test_empty_input(self):
        assert len(index_method_skyline(PointSet.empty(3))) == 0

    def test_single_dimension(self, rng):
        points = PointSet(rng.random((50, 3)))
        expected = brute_force_skyline_ids(points, (1,))
        assert index_method_skyline(points, (1,)).id_set() == expected

    def test_duplicates_kept(self):
        points = PointSet(np.array([[0.3, 0.3]] * 3))
        assert len(index_method_skyline(points)) == 3
