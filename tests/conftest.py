"""Shared fixtures and oracles for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dataset import PointSet
from repro.p2p.network import SuperPeerNetwork


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def uniform_points(rng) -> PointSet:
    """200 uniform points in 5 dimensions."""
    return PointSet(rng.random((200, 5)))


@pytest.fixture
def paper_peer_a() -> PointSet:
    """Peer P_A of the paper's Figure 2 (4-dimensional)."""
    values = np.array(
        [
            [2, 2, 2, 2],  # A1
            [1, 3, 2, 3],  # A2
            [1, 3, 5, 4],  # A3
            [2, 3, 2, 1],  # A4
            [5, 2, 4, 1],  # A5
        ],
        dtype=float,
    )
    return PointSet(values, np.array([1, 2, 3, 4, 5]))


@pytest.fixture
def paper_peer_b() -> PointSet:
    """Peer P_B of the paper's Figure 2."""
    values = np.array(
        [
            [3, 1, 1, 3],  # B1
            [4, 5, 4, 6],  # B2
            [2, 3, 3, 3],  # B3
            [1, 2, 3, 4],  # B4
            [5, 5, 5, 5],  # B5
        ],
        dtype=float,
    )
    return PointSet(values, np.array([11, 12, 13, 14, 15]))


@pytest.fixture(scope="session")
def small_network() -> SuperPeerNetwork:
    """A pre-processed 60-peer network shared across tests (read-only)."""
    return SuperPeerNetwork.build(
        n_peers=60, points_per_peer=30, dimensionality=5, seed=99
    )


def brute_force_skyline_ids(points: PointSet, subspace, strict: bool = False) -> frozenset[int]:
    """O(n^2) dominance oracle, independent of all library code paths."""
    cols = list(subspace)
    values = points.values[:, cols]
    ids = points.ids
    n = values.shape[0]
    keep = []
    for i in range(n):
        dominated = False
        for j in range(n):
            if i == j:
                continue
            if strict:
                if np.all(values[j] < values[i]):
                    dominated = True
                    break
            elif np.all(values[j] <= values[i]) and np.any(values[j] < values[i]):
                dominated = True
                break
        if not dominated:
            keep.append(int(ids[i]))
    return frozenset(keep)
