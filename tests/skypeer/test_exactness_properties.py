"""Property-based, end-to-end exactness of the distributed engine.

The paper's central correctness claim ("SKYPEER computes the exact
subspace skyline results") is tested by wiring randomized networks over
randomized datasets and comparing every variant's answer for random
subspaces against the centralized oracle.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dataset import PointSet
from repro.core.extended_skyline import subspace_skyline_points
from repro.data.workload import Query
from repro.p2p.network import SuperPeerNetwork
from repro.p2p.topology import Topology
from repro.skypeer.executor import execute_query
from repro.skypeer.variants import Variant


@st.composite
def random_networks(draw):
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    d = draw(st.integers(2, 5))
    n_superpeers = draw(st.integers(1, 6))
    peers_per_sp = draw(st.integers(1, 4))
    n_peers = n_superpeers * peers_per_sp
    points_per_peer = draw(st.integers(1, 15))
    use_grid = draw(st.booleans())
    topo = Topology.generate(
        n_peers=n_peers, n_superpeers=n_superpeers, degree=3.0, seed=seed
    )
    partitions = {}
    next_id = 0
    for peers in topo.peers_of.values():
        for pid in peers:
            if use_grid:
                values = rng.integers(0, 4, size=(points_per_peer, d)).astype(float)
            else:
                values = rng.random((points_per_peer, d))
            partitions[pid] = PointSet(
                values, np.arange(next_id, next_id + points_per_peer)
            )
            next_id += points_per_peer
    net = SuperPeerNetwork.from_partitions(topo, partitions)
    k = draw(st.integers(1, d))
    dims = draw(st.lists(st.integers(0, d - 1), min_size=k, max_size=k, unique=True))
    initiator = draw(st.sampled_from(sorted(topo.superpeer_ids)))
    return net, tuple(sorted(dims)), initiator


@given(random_networks())
@settings(max_examples=40, deadline=None)
def test_every_variant_is_exact(case):
    net, subspace, initiator = case
    expected = subspace_skyline_points(net.all_points(), subspace).id_set()
    query = Query(subspace=subspace, initiator=initiator)
    for variant in Variant:
        got = execute_query(net, query, variant)
        assert got.result_ids == expected, variant


@given(random_networks())
@settings(max_examples=25, deadline=None)
def test_metrics_are_consistent(case):
    net, subspace, initiator = case
    query = Query(subspace=subspace, initiator=initiator)
    for variant in Variant:
        got = execute_query(net, query, variant)
        assert got.computational_time >= 0
        assert got.total_time >= got.computational_time - 1e-12
        assert got.volume_bytes >= 0
        assert got.message_count >= 0
        if net.n_superpeers > 1:
            assert got.message_count >= net.n_superpeers - 1


@given(random_networks())
@settings(max_examples=20, deadline=None)
def test_progressive_merging_never_ships_more(case):
    net, subspace, initiator = case
    query = Query(subspace=subspace, initiator=initiator)
    fm = execute_query(net, query, Variant.FTFM)
    pm = execute_query(net, query, Variant.FTPM)
    assert pm.volume_bytes <= fm.volume_bytes
