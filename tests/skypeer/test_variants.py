"""Unit tests for the variant enum (Table 2)."""

import pytest

from repro.skypeer.variants import Variant


class TestVariant:
    def test_table2_mnemonics(self):
        assert {v.value for v in Variant} == {"FTFM", "FTPM", "RTFM", "RTPM", "naive"}

    def test_refined_threshold_flag(self):
        assert Variant.RTFM.refined_threshold
        assert Variant.RTPM.refined_threshold
        assert not Variant.FTFM.refined_threshold
        assert not Variant.FTPM.refined_threshold
        assert not Variant.NAIVE.refined_threshold

    def test_progressive_merging_flag(self):
        assert Variant.FTPM.progressive_merging
        assert Variant.RTPM.progressive_merging
        assert not Variant.FTFM.progressive_merging
        assert not Variant.RTFM.progressive_merging
        assert not Variant.NAIVE.progressive_merging

    def test_uses_threshold(self):
        assert all(v.uses_threshold for v in Variant.skypeer_variants())
        assert not Variant.NAIVE.uses_threshold

    def test_skypeer_variants_excludes_naive(self):
        assert Variant.NAIVE not in Variant.skypeer_variants()
        assert len(Variant.skypeer_variants()) == 4

    def test_parse_case_insensitive(self):
        assert Variant.parse("ftpm") is Variant.FTPM
        assert Variant.parse("RTFM") is Variant.RTFM
        assert Variant.parse("naive") is Variant.NAIVE
        assert Variant.parse("NAIVE") is Variant.NAIVE

    def test_parse_unknown(self):
        with pytest.raises(ValueError, match="unknown variant"):
            Variant.parse("FTXX")
