"""Tests for execution inspection / reporting."""

import json

import pytest

from repro.data.workload import Query
from repro.skypeer.executor import execute_query
from repro.skypeer.inspection import (
    execution_report,
    execution_report_json,
    format_execution,
)
from repro.skypeer.variants import Variant


@pytest.fixture
def execution(small_network):
    query = Query(subspace=(0, 2, 4), initiator=small_network.topology.superpeer_ids[0])
    return execute_query(small_network, query, Variant.FTPM)


class TestExecutionReport:
    def test_top_level_fields(self, execution):
        report = execution_report(execution)
        assert report["variant"] == "FTPM"
        assert report["query"]["subspace"] == [0, 2, 4]
        assert report["result_points"] == len(execution.result)
        assert report["volume_bytes"] == execution.volume_bytes
        assert report["transfer_time_seconds"] == pytest.approx(
            execution.total_time - execution.computational_time
        )

    def test_per_superpeer_entries(self, execution, small_network):
        report = execution_report(execution)
        assert len(report["per_superpeer"]) == small_network.n_superpeers
        for entry in report["per_superpeer"].values():
            assert 0 <= entry["scan_fraction"] <= 1
            assert entry["examined"] <= entry["store_points"]

    def test_json_serializable(self, execution):
        payload = execution_report_json(execution)
        decoded = json.loads(payload)
        assert decoded["variant"] == "FTPM"

    def test_infinite_threshold_becomes_null(self, small_network):
        query = Query(subspace=(0, 1), initiator=small_network.topology.superpeer_ids[0])
        naive = execute_query(small_network, query, Variant.NAIVE)
        report = execution_report(naive)
        assert report["initial_threshold"] is None
        json.loads(execution_report_json(naive))  # still serializable


class TestFormatExecution:
    def test_mentions_key_numbers(self, execution):
        text = format_execution(execution)
        assert "FTPM" in text
        assert "skyline points" in text
        assert "scan effort" in text
        assert "busiest super-peers" in text

    def test_top_limits_breakdown(self, execution):
        text = format_execution(execution, top=1)
        assert text.count("SP ") == 1
