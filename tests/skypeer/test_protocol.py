"""Tests for the message-passing protocol engine (flooded Algorithm 3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.extended_skyline import subspace_skyline_points
from repro.data.workload import Query
from repro.p2p.network import SuperPeerNetwork
from repro.skypeer.executor import execute_query
from repro.skypeer.protocol import run_protocol
from repro.skypeer.variants import Variant

ALL = tuple(Variant)


class TestProtocolExactness:
    @pytest.mark.parametrize("variant", ALL)
    def test_matches_centralized_oracle(self, small_network, variant):
        for sub in [(0, 2), (1, 3, 4)]:
            expected = subspace_skyline_points(small_network.all_points(), sub).id_set()
            query = Query(subspace=sub, initiator=small_network.topology.superpeer_ids[0])
            got = run_protocol(small_network, query, variant)
            assert got.result_ids == expected, (sub, variant)

    @pytest.mark.parametrize("variant", ALL)
    def test_matches_plan_based_executor(self, small_network, variant):
        query = Query(subspace=(0, 1, 3), initiator=small_network.topology.superpeer_ids[1])
        protocol = run_protocol(small_network, query, variant)
        planned = execute_query(small_network, query, variant)
        assert protocol.result_ids == planned.result_ids

    def test_single_superpeer(self):
        net = SuperPeerNetwork.build(
            n_peers=6, points_per_peer=15, dimensionality=3, n_superpeers=1, seed=8
        )
        query = Query(subspace=(0, 2), initiator=net.topology.superpeer_ids[0])
        expected = subspace_skyline_points(net.all_points(), (0, 2)).id_set()
        for variant in ALL:
            assert run_protocol(net, query, variant).result_ids == expected

    def test_result_carries_projected_coordinates(self, small_network):
        sub = (1, 4)
        query = Query(subspace=sub, initiator=small_network.topology.superpeer_ids[0])
        got = run_protocol(small_network, query, Variant.FTPM)
        assert got.result.points.dimensionality == len(sub)
        # projected coordinates match the original points
        for point_id, coords in got.result.points:
            original = small_network.all_points().by_id(point_id)
            np.testing.assert_allclose(coords, original[list(sub)])


class TestFloodingBehaviour:
    def test_query_reaches_every_superpeer(self, small_network):
        query = Query(subspace=(0, 1), initiator=small_network.topology.superpeer_ids[0])
        got = run_protocol(small_network, query, Variant.FTFM)
        # flooding sends the query over >= the spanning tree's edges
        assert got.query_messages >= small_network.n_superpeers - 1

    def test_duplicate_replies_count_non_tree_edges(self):
        """In a flooded backbone, every edge beyond the implicit tree
        triggers duplicate-suppression replies."""
        net = SuperPeerNetwork.build(
            n_peers=100, points_per_peer=10, dimensionality=3, degree=5.0, seed=13
        )
        query = Query(subspace=(0, 1), initiator=net.topology.superpeer_ids[0])
        got = run_protocol(net, query, Variant.FTPM)
        edges = sum(len(ns) for ns in net.topology.adjacency.values()) // 2
        tree_edges = net.n_superpeers - 1
        # each non-tree edge is crossed by queries from both (or one) side
        assert got.duplicate_replies >= edges - tree_edges

    def test_flooding_costs_at_least_the_tree_plan(self, small_network):
        """The executor's tree is an idealization; the real flood pays
        for duplicate queries and suppression replies on top."""
        query = Query(subspace=(0, 2), initiator=small_network.topology.superpeer_ids[0])
        flood = run_protocol(small_network, query, Variant.FTPM)
        plan = execute_query(small_network, query, Variant.FTPM)
        assert flood.message_count >= plan.message_count

    def test_total_time_positive_and_finite(self, small_network):
        query = Query(subspace=(0, 2), initiator=small_network.topology.superpeer_ids[0])
        got = run_protocol(small_network, query, Variant.RTPM)
        assert 0 < got.total_time < float("inf")
        assert got.events > 0

    def test_string_variant(self, small_network):
        query = Query(subspace=(0, 1), initiator=small_network.topology.superpeer_ids[0])
        assert run_protocol(small_network, query, "naive").variant is Variant.NAIVE


@st.composite
def protocol_cases(draw):
    seed = draw(st.integers(0, 2**31 - 1))
    d = draw(st.integers(2, 4))
    n_superpeers = draw(st.integers(1, 5))
    peers_per_sp = draw(st.integers(1, 3))
    points = draw(st.integers(1, 12))
    k = draw(st.integers(1, d))
    dims = tuple(sorted(draw(
        st.lists(st.integers(0, d - 1), min_size=k, max_size=k, unique=True)
    )))
    variant = draw(st.sampled_from(list(Variant)))
    return seed, d, n_superpeers, peers_per_sp, points, dims, variant


@given(protocol_cases())
@settings(max_examples=25, deadline=None)
def test_protocol_exact_on_random_networks(case):
    seed, d, n_sp, ppsp, points, dims, variant = case
    net = SuperPeerNetwork.build(
        n_peers=n_sp * ppsp,
        points_per_peer=points,
        dimensionality=d,
        n_superpeers=n_sp,
        seed=seed,
    )
    initiator = net.topology.superpeer_ids[seed % n_sp]
    query = Query(subspace=dims, initiator=initiator)
    expected = subspace_skyline_points(net.all_points(), dims).id_set()
    got = run_protocol(net, query, variant)
    assert got.result_ids == expected
