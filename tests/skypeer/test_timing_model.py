"""Tests for the execution-scheduling helpers and timing structure."""

import pytest

from repro.data.workload import Query
from repro.p2p.cost import CostModel
from repro.p2p.network import SuperPeerNetwork
from repro.skypeer.executor import _bfs_preorder, _paths_to_root, execute_query
from repro.skypeer.variants import Variant


class TestTreeHelpers:
    def test_bfs_preorder_parents_first(self):
        children = {0: (1, 2), 1: (3,), 2: (), 3: ()}
        order = _bfs_preorder(0, children)
        assert order == [0, 1, 2, 3]
        position = {sp: i for i, sp in enumerate(order)}
        for parent, kids in children.items():
            for kid in kids:
                assert position[parent] < position[kid]

    def test_paths_to_root(self):
        parent = {0: None, 1: 0, 2: 1}
        paths = _paths_to_root([0, 1, 2], parent)
        assert paths[0] == ()
        assert paths[1] == ((1, 0),)
        assert paths[2] == ((2, 1), (1, 0))


class TestTimingStructure:
    @pytest.fixture(scope="class")
    def network(self):
        return SuperPeerNetwork.build(
            n_peers=80, points_per_peer=40, dimensionality=5, seed=23
        )

    def test_zero_bandwidth_effect_on_comp_time(self, network):
        """Computational time is independent of the network transfers in
        expectation: it equals total time when bandwidth is infinite."""
        fast = SuperPeerNetwork.build(
            n_peers=80, points_per_peer=40, dimensionality=5, seed=23,
            cost_model=CostModel(bandwidth_bytes_per_sec=1e15),
        )
        query = Query(subspace=(0, 2), initiator=fast.topology.superpeer_ids[0])
        got = execute_query(fast, query, Variant.FTFM)
        assert got.total_time == pytest.approx(got.computational_time, rel=1e-6)

    def test_total_time_dominated_by_transfers_at_4kbps(self, network):
        query = Query(subspace=(0, 2), initiator=network.topology.superpeer_ids[0])
        got = execute_query(network, query, Variant.FTFM)
        assert got.total_time > 10 * got.computational_time

    def test_volume_independent_of_bandwidth(self, network):
        query = Query(subspace=(0, 2), initiator=network.topology.superpeer_ids[0])
        slow = execute_query(network, query, Variant.FTPM)
        fast_net = SuperPeerNetwork.build(
            n_peers=80, points_per_peer=40, dimensionality=5, seed=23,
            cost_model=CostModel(bandwidth_bytes_per_sec=1e9),
        )
        fast = execute_query(fast_net, query, Variant.FTPM)
        assert slow.volume_bytes == fast.volume_bytes

    def test_total_time_lower_bound_from_volume(self, network):
        """Total time can never beat the single best-case transfer of
        the data that actually crossed the initiator's incoming links."""
        query = Query(subspace=(0, 2), initiator=network.topology.superpeer_ids[0])
        got = execute_query(network, query, Variant.FTPM)
        # every byte of the final result crossed at least one 4 KB/s hop
        final_bytes = network.cost_model.result_bytes(len(got.result), 2)
        assert got.total_time * 4096 * network.n_superpeers >= final_bytes

    def test_initiator_locality_matters(self, network):
        """Different initiators give different (but exact) timings."""
        sub = (1, 3)
        times = set()
        for initiator in list(network.topology.superpeer_ids)[:3]:
            got = execute_query(network, Query(subspace=sub, initiator=initiator), Variant.FTPM)
            times.add(round(got.total_time, 6))
        assert len(times) > 1
