"""Socket-transport integration: sim-vs-socket equality and cost checks.

The acceptance bar of the transport PR: all five variants must return
bit-identical result sets over real TCP sockets, and the measured wire
traffic must match the cost model's estimates within the documented
constant per-message envelope delta (``docs/TRANSPORT.md``).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.extended_skyline import subspace_skyline_points
from repro.data.workload import Query
from repro.obs import observed
from repro.p2p.cost import DEFAULT_COST_MODEL
from repro.p2p.network import SuperPeerNetwork
from repro.p2p.transport import TransportConfig
from repro.p2p.wire import QueryMessage, ResultMessage
from repro.skypeer.netexec import resolve_transport_mode, run_socket_query
from repro.skypeer.protocol import run_protocol
from repro.skypeer.variants import Variant

ALL = tuple(Variant)


@pytest.fixture(scope="module")
def mesh_network() -> SuperPeerNetwork:
    """Six super-peers so queries actually flood across links."""
    return SuperPeerNetwork.build(
        n_peers=36, points_per_peer=20, dimensionality=5,
        n_superpeers=6, seed=7,
    )


def _query(network, subspace=(0, 2, 4), which=0) -> Query:
    return Query(
        subspace=subspace, initiator=network.topology.superpeer_ids[which]
    )


# Per-message envelope delta between the cost model's estimate and the
# codec's actual bytes.  Computed, not hard-coded, so the assertion
# tracks both sides; independence from k / n is checked explicitly.
def _query_delta(k: int) -> int:
    blob = QueryMessage(1, tuple(range(k)), 1.0, 0).encode()
    return DEFAULT_COST_MODEL.query_bytes(k) - len(blob)


def _result_delta(n: int, k: int) -> int:
    msg = ResultMessage(
        query_id=1, sender=0,
        ids=tuple(range(n)), f=tuple(float(i) for i in range(n)),
        coords=tuple((0.5,) * k for _ in range(n)),
    )
    return DEFAULT_COST_MODEL.result_bytes(n, k) - len(msg.encode())


class TestEnvelopeDelta:
    def test_query_delta_is_constant_in_k(self):
        deltas = {_query_delta(k) for k in (1, 2, 3, 5, 8)}
        assert len(deltas) == 1

    def test_result_delta_is_constant_in_n_and_k(self):
        deltas = {_result_delta(n, k) for n in (0, 1, 4, 9) for k in (1, 3, 5)}
        assert len(deltas) == 1


class TestTaskModeEquality:
    @pytest.mark.parametrize("variant", ALL)
    def test_socket_matches_sim_and_oracle(self, mesh_network, variant):
        query = _query(mesh_network)
        sim = run_protocol(mesh_network, query, variant)
        outcome = run_socket_query(mesh_network, query, variant, mode="task")
        expected = subspace_skyline_points(
            mesh_network.all_points(), query.subspace
        ).id_set()
        assert outcome.result_ids == sim.result_ids == expected

    def test_result_store_carries_f_and_projection(self, mesh_network):
        query = _query(mesh_network, subspace=(1, 3))
        outcome = run_socket_query(mesh_network, query, Variant.FTPM, mode="task")
        assert outcome.result.points.dimensionality == 2
        all_points = mesh_network.all_points()
        for point_id, coords in outcome.result.points:
            original = all_points.by_id(point_id)
            np.testing.assert_allclose(coords, original[[1, 3]])

    @pytest.mark.parametrize("variant", ALL)
    def test_measured_bytes_match_cost_model(self, mesh_network, variant):
        """estimate - measured == the constant envelope delta per message."""
        query = _query(mesh_network, which=1)
        report = run_socket_query(
            mesh_network, query, variant, mode="task"
        ).report
        assert report.messages == report.query_messages + report.result_messages
        assert report.messages > 0
        expected_delta = (
            _query_delta(3) * report.query_messages
            + _result_delta(2, 3) * report.result_messages
        )
        assert report.estimate_delta_bytes == expected_delta

    def test_per_superpeer_stats_sum_to_totals(self, mesh_network):
        query = _query(mesh_network)
        report = run_socket_query(mesh_network, query, Variant.RTPM).report
        sent = sum(s["payload_bytes_sent"] for s in report.per_superpeer.values())
        received = sum(
            s["payload_bytes_received"] for s in report.per_superpeer.values()
        )
        assert sent == report.payload_bytes
        assert received == report.payload_bytes  # loopback loses nothing
        assert sum(
            s["messages_sent"] for s in report.per_superpeer.values()
        ) == report.messages
        # framing adds the 4-byte prefixes and hello frames, nothing more
        assert report.frame_bytes > report.payload_bytes

    def test_records_obs_metrics(self, mesh_network):
        query = _query(mesh_network)
        with observed() as (tracer, metrics):
            report = run_socket_query(mesh_network, query, Variant.FTFM).report
        assert metrics.total("transport.bytes_sent") == report.payload_bytes
        assert metrics.total("transport.estimated_bytes") == report.estimated_bytes
        assert metrics.total("transport.messages") == report.messages
        spans = [span for span in tracer.spans if span.name == "socket query"]
        assert len(spans) == 1
        assert dict(spans[0].args)["payload_bytes"] == report.payload_bytes


class TestProcessMode:
    @pytest.mark.parametrize("variant", (Variant.NAIVE, Variant.FTPM, Variant.RTPM))
    def test_matches_sim(self, mesh_network, variant, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRANSPORT_RUNDIR", str(tmp_path))
        query = _query(mesh_network)
        sim = run_protocol(mesh_network, query, variant)
        outcome = run_socket_query(mesh_network, query, variant, mode="process")
        assert outcome.result_ids == sim.result_ids
        assert outcome.report.mode == "process"
        assert outcome.report.messages > 0
        # every endpoint process removed its pid marker on exit
        leftovers = [p for p in os.listdir(tmp_path) if p.endswith(".pid")]
        assert leftovers == []

    def test_cost_model_holds_across_processes(self, mesh_network, tmp_path,
                                               monkeypatch):
        monkeypatch.setenv("REPRO_TRANSPORT_RUNDIR", str(tmp_path))
        query = _query(mesh_network, which=2)
        report = run_socket_query(
            mesh_network, query, Variant.FTFM, mode="process"
        ).report
        expected_delta = (
            _query_delta(3) * report.query_messages
            + _result_delta(2, 3) * report.result_messages
        )
        assert report.estimate_delta_bytes == expected_delta


class TestModeResolution:
    def test_default_is_task(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRANSPORT_MODE", raising=False)
        assert resolve_transport_mode() == "task"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRANSPORT_MODE", "process")
        assert resolve_transport_mode() == "process"
        assert resolve_transport_mode("task") == "task"  # argument wins

    def test_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown transport mode"):
            resolve_transport_mode("carrier-pigeon")

    def test_unknown_initiator_rejected(self, mesh_network):
        query = Query(subspace=(0, 1), initiator=999_999)
        with pytest.raises(KeyError, match="unknown initiator"):
            run_socket_query(mesh_network, query, Variant.FTPM, mode="task")


class TestConfigPlumbing:
    def test_explicit_config_is_used(self, mesh_network):
        config = TransportConfig(io_timeout=20.0, retries=1)
        query = _query(mesh_network)
        outcome = run_socket_query(
            mesh_network, query, Variant.FTPM, mode="task", config=config
        )
        assert len(outcome.result) > 0
