"""Exactness is independent of the cost model.

Bandwidth, header sizes and per-point byte counts change *when* things
happen and how much they cost — never *what* the answer is.  A quick
property run over adversarial cost models guards the separation
between the algorithmic layer and the cost layer.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.extended_skyline import subspace_skyline_points
from repro.data.workload import Query
from repro.p2p.cost import CostModel
from repro.p2p.network import SuperPeerNetwork
from repro.skypeer.executor import execute_query
from repro.skypeer.protocol import run_protocol
from repro.skypeer.variants import Variant


@given(
    st.floats(1.0, 1e12, allow_nan=False),
    st.integers(0, 10_000),
    st.integers(1, 64),
    st.sampled_from(list(Variant)),
)
@settings(max_examples=20, deadline=None)
def test_answers_independent_of_cost_model(bandwidth, header, coord_bytes, variant):
    cost = CostModel(
        bandwidth_bytes_per_sec=bandwidth,
        message_header_bytes=header,
        coordinate_bytes=coord_bytes,
    )
    network = SuperPeerNetwork.build(
        n_peers=9, points_per_peer=12, dimensionality=3, n_superpeers=3,
        seed=5, cost_model=cost,
    )
    query = Query(subspace=(0, 2), initiator=network.topology.superpeer_ids[0])
    truth = subspace_skyline_points(network.all_points(), (0, 2)).id_set()
    assert execute_query(network, query, variant).result_ids == truth
    assert run_protocol(network, query, variant).result_ids == truth
