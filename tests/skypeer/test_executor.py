"""Unit and integration tests for the SKYPEER executor (Algorithm 3)."""

import math

import numpy as np
import pytest

from repro.core.extended_skyline import subspace_skyline_points
from repro.data.workload import Query
from repro.p2p.cost import CostModel
from repro.p2p.network import SuperPeerNetwork
from repro.skypeer.executor import Clock, execute_query
from repro.skypeer.variants import Variant

ALL = tuple(Variant)


class TestClock:
    def test_compute_advances_both(self):
        c = Clock().after_compute(2.0)
        assert c.comp == 2.0 and c.total == 2.0

    def test_transfer_advances_total_only(self):
        c = Clock().after_transfer(3.0)
        assert c.comp == 0.0 and c.total == 3.0

    def test_latest_is_elementwise(self):
        a = Clock(1.0, 5.0)
        b = Clock(2.0, 3.0)
        top = Clock.latest([a, b])
        assert top.comp == 2.0 and top.total == 5.0

    def test_latest_empty(self):
        assert Clock.latest([]) == Clock()

    def test_comp_never_exceeds_total(self, small_network):
        query = Query(subspace=(0, 2), initiator=small_network.topology.superpeer_ids[0])
        for variant in ALL:
            got = execute_query(small_network, query, variant)
            assert got.computational_time <= got.total_time + 1e-12


class TestExactness:
    @pytest.mark.parametrize("variant", ALL)
    def test_matches_centralized_oracle(self, small_network, variant):
        for sub in [(0,), (1, 3), (0, 2, 4), (0, 1, 2, 3, 4)]:
            expected = subspace_skyline_points(small_network.all_points(), sub).id_set()
            for initiator in small_network.topology.superpeer_ids:
                query = Query(subspace=sub, initiator=initiator)
                got = execute_query(small_network, query, variant)
                assert got.result_ids == expected, (sub, initiator)

    def test_all_variants_agree(self, small_network):
        query = Query(subspace=(1, 2, 4), initiator=small_network.topology.superpeer_ids[1])
        results = {v: execute_query(small_network, query, v).result_ids for v in ALL}
        assert len(set(results.values())) == 1

    def test_single_superpeer_network(self):
        net = SuperPeerNetwork.build(
            n_peers=8, points_per_peer=20, dimensionality=3, n_superpeers=1, seed=4
        )
        query = Query(subspace=(0, 2), initiator=net.topology.superpeer_ids[0])
        truth = subspace_skyline_points(net.all_points(), (0, 2)).id_set()
        for variant in ALL:
            assert execute_query(net, query, variant).result_ids == truth

    def test_string_variant_accepted(self, small_network):
        query = Query(subspace=(0, 1), initiator=small_network.topology.superpeer_ids[0])
        got = execute_query(small_network, query, "ftpm")
        assert got.variant is Variant.FTPM

    def test_unknown_initiator_rejected(self, small_network):
        query = Query(subspace=(0, 1), initiator=10**9)
        with pytest.raises(KeyError):
            execute_query(small_network, query)

    def test_result_is_f_sorted(self, small_network):
        query = Query(subspace=(0, 3), initiator=small_network.topology.superpeer_ids[0])
        for variant in ALL:
            got = execute_query(small_network, query, variant)
            assert np.all(np.diff(got.result.f) >= 0)


class TestThresholdSemantics:
    def test_initial_threshold_recorded(self, small_network):
        query = Query(subspace=(0, 2), initiator=small_network.topology.superpeer_ids[0])
        got = execute_query(small_network, query, Variant.FTFM)
        assert math.isfinite(got.initial_threshold)
        naive = execute_query(small_network, query, Variant.NAIVE)
        assert naive.initial_threshold == math.inf

    def test_refined_thresholds_monotone_along_tree(self, small_network):
        """RT*: every super-peer's outgoing threshold <= incoming one."""
        root = small_network.topology.superpeer_ids[0]
        query = Query(subspace=(0, 2), initiator=root)
        got = execute_query(small_network, query, Variant.RTPM)
        parent, _children = small_network.topology.bfs_tree(root)
        traces = got.traces
        for sp, trace in traces.items():
            if parent[sp] is not None:
                assert trace.threshold <= traces[parent[sp]].threshold + 1e-12

    def test_threshold_reduces_examined_points(self, small_network):
        """FT variants scan no more than naive-equivalent full scans."""
        query = Query(subspace=(0, 1), initiator=small_network.topology.superpeer_ids[0])
        got = execute_query(small_network, query, Variant.FTFM)
        for sp, trace in got.traces.items():
            assert trace.examined <= trace.input_size


class TestCostAccounting:
    def test_volume_positive_and_pm_cheaper(self, small_network):
        query = Query(subspace=(0, 1, 2), initiator=small_network.topology.superpeer_ids[0])
        fm = execute_query(small_network, query, Variant.FTFM)
        pm = execute_query(small_network, query, Variant.FTPM)
        assert 0 < pm.volume_bytes <= fm.volume_bytes

    def test_naive_volume_at_least_ftfm(self, small_network):
        query = Query(subspace=(0, 1, 2), initiator=small_network.topology.superpeer_ids[0])
        naive = execute_query(small_network, query, Variant.NAIVE)
        ftfm = execute_query(small_network, query, Variant.FTFM)
        assert naive.volume_bytes >= ftfm.volume_bytes

    def test_message_counts(self, small_network):
        n_sp = small_network.n_superpeers
        query = Query(subspace=(0, 1), initiator=small_network.topology.superpeer_ids[0])
        pm = execute_query(small_network, query, Variant.FTPM)
        # PM: one query + one result message per tree edge
        assert pm.message_count == 2 * (n_sp - 1)
        fm = execute_query(small_network, query, Variant.FTFM)
        assert fm.message_count >= pm.message_count

    def test_bandwidth_scales_total_time(self):
        # needs several super-peers so transfers actually happen
        slow = SuperPeerNetwork.build(
            n_peers=40, points_per_peer=20, dimensionality=4, n_superpeers=4, seed=3,
            cost_model=CostModel(bandwidth_bytes_per_sec=1024.0),
        )
        fast = SuperPeerNetwork.build(
            n_peers=40, points_per_peer=20, dimensionality=4, n_superpeers=4, seed=3,
            cost_model=CostModel(bandwidth_bytes_per_sec=1024.0 * 64),
        )
        query = Query(subspace=(0, 2), initiator=slow.topology.superpeer_ids[0])
        t_slow = execute_query(slow, query, Variant.FTFM).total_time
        t_fast = execute_query(fast, query, Variant.FTFM).total_time
        assert t_slow > t_fast

    def test_local_result_points_recorded(self, small_network):
        query = Query(subspace=(0, 1), initiator=small_network.topology.superpeer_ids[0])
        got = execute_query(small_network, query, Variant.FTFM)
        assert got.local_result_points >= len(got.result)
