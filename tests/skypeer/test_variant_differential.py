"""Differential exactness: every variant vs the centralized oracle.

The repo-wide guarantee, stated once as a generative test: for any tiny
randomized network (peer count, dimensionality, dataset shape and the
query subspace all drawn by Hypothesis), the five execution strategies
(naive, FTFM, FTPM, RTFM, RTPM) all return exactly the subspace skyline
that the centralized :func:`repro.core.dominance.skyline_mask` oracle
computes over the union of all peer data.

This differs from ``test_exactness_properties`` in that the oracle here
is the raw dominance mask (no extended-skyline machinery in the loop)
and that the dataset *kind* — uniform, duplicate-heavy grid, correlated
and anticorrelated — is part of the search space, since threshold
pruning bugs tend to hide in ties and in extreme skyline densities.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dataset import PointSet
from repro.core.dominance import skyline_mask
from repro.data.workload import Query
from repro.p2p.network import SuperPeerNetwork
from repro.p2p.topology import Topology
from repro.skypeer.executor import execute_query
from repro.skypeer.variants import Variant

DATASETS = ("uniform", "grid", "correlated", "anticorrelated")


def _draw_values(kind: str, rng: np.random.Generator, n: int, d: int) -> np.ndarray:
    if kind == "grid":
        # Tiny integer grid: maximal tie density, duplicate rows likely.
        return rng.integers(0, 3, size=(n, d)).astype(float)
    base = rng.random((n, d))
    if kind == "correlated":
        drift = rng.random((n, 1))
        return np.clip(0.7 * drift + 0.3 * base, 0.0, 1.0)
    if kind == "anticorrelated":
        values = base.copy()
        values[:, 0] = 1.0 - base[:, 1:].mean(axis=1)
        return np.clip(values, 0.0, 1.0)
    return base


@st.composite
def differential_cases(draw):
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    d = draw(st.integers(2, 5))
    n_superpeers = draw(st.integers(1, 5))
    peers_per_sp = draw(st.integers(1, 3))
    points_per_peer = draw(st.integers(1, 12))
    kind = draw(st.sampled_from(DATASETS))
    topo = Topology.generate(
        n_peers=n_superpeers * peers_per_sp,
        n_superpeers=n_superpeers,
        degree=3.0,
        seed=seed,
    )
    partitions = {}
    next_id = 0
    for peers in topo.peers_of.values():
        for pid in peers:
            values = _draw_values(kind, rng, points_per_peer, d)
            partitions[pid] = PointSet(
                values, np.arange(next_id, next_id + points_per_peer)
            )
            next_id += points_per_peer
    network = SuperPeerNetwork.from_partitions(topo, partitions)
    k = draw(st.integers(1, d))
    dims = draw(st.lists(st.integers(0, d - 1), min_size=k, max_size=k, unique=True))
    initiator = draw(st.sampled_from(sorted(topo.superpeer_ids)))
    return network, tuple(sorted(dims)), initiator


@given(differential_cases())
@settings(max_examples=35, deadline=None)
def test_all_variants_match_skyline_mask_oracle(case):
    network, subspace, initiator = case
    everything = network.all_points()
    mask = skyline_mask(everything.values, list(subspace))
    expected = frozenset(int(i) for i in everything.ids[mask])
    query = Query(subspace=subspace, initiator=initiator)
    for variant in Variant:
        execution = execute_query(network, query, variant)
        assert execution.result_ids == expected, (
            f"{variant.value} diverged from the centralized oracle on "
            f"subspace {subspace} (seeded network with "
            f"{network.n_superpeers} super-peers)"
        )


@given(differential_cases())
@settings(max_examples=15, deadline=None)
def test_variants_agree_pairwise(case):
    """All five strategies return one identical id set (no oracle)."""
    network, subspace, initiator = case
    query = Query(subspace=subspace, initiator=initiator)
    answers = {
        variant: execute_query(network, query, variant).result_ids
        for variant in Variant
    }
    distinct = set(answers.values())
    assert len(distinct) == 1, {v.value: sorted(a) for v, a in answers.items()}
