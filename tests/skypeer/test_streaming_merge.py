"""Pipelined (streaming) initiator merge vs the buffered merge.

The streaming initiator dominance-filters result frames the moment they
arrive and cancels its reader tasks once the final merge ships.  These
tests pin the exactness claim (identical result set to the buffered
merge and the centralized oracle, all five variants), the cancellation
accounting (readers cancelled only in pipelined mode, with byte
conservation intact), and the mode-resolution precedence.
"""

from __future__ import annotations

import pytest

from repro.core.extended_skyline import subspace_skyline_points
from repro.data.workload import Query
from repro.obs import observed
from repro.p2p.network import SuperPeerNetwork
from repro.skypeer.netexec import resolve_merge_mode, run_socket_query
from repro.skypeer.variants import Variant

ALL = tuple(Variant)


@pytest.fixture(scope="module")
def mesh_network() -> SuperPeerNetwork:
    """Six super-peers so result frames actually stream in over links."""
    return SuperPeerNetwork.build(
        n_peers=36, points_per_peer=20, dimensionality=5,
        n_superpeers=6, seed=7,
    )


def _query(network, subspace=(0, 2, 4), which=0) -> Query:
    return Query(
        subspace=subspace, initiator=network.topology.superpeer_ids[which]
    )


class TestExactness:
    @pytest.mark.parametrize("variant", ALL)
    def test_pipelined_matches_buffered_and_oracle(self, mesh_network, variant):
        query = _query(mesh_network)
        buffered = run_socket_query(
            mesh_network, query, variant, mode="task", merge="buffered"
        )
        pipelined = run_socket_query(
            mesh_network, query, variant, mode="task", merge="pipelined"
        )
        expected = subspace_skyline_points(
            mesh_network.all_points(), query.subspace
        ).id_set()
        assert pipelined.result_ids == buffered.result_ids == expected
        assert buffered.report.merge_mode == "buffered"
        assert pipelined.report.merge_mode == "pipelined"

    def test_result_store_matches_buffered_projection(self, mesh_network):
        query = _query(mesh_network, subspace=(1, 3), which=2)
        buffered = run_socket_query(
            mesh_network, query, Variant.FTPM, merge="buffered"
        ).result
        pipelined = run_socket_query(
            mesh_network, query, Variant.FTPM, merge="pipelined"
        ).result
        assert pipelined.points.dimensionality == 2
        assert pipelined.points.id_set() == buffered.points.id_set()


class TestCancellation:
    def test_pipelined_cancels_readers_and_conserves_bytes(self, mesh_network):
        query = _query(mesh_network, which=1)
        report = run_socket_query(
            mesh_network, query, Variant.RTPM, mode="task", merge="pipelined"
        ).report
        assert report.readers_cancelled > 0
        assert report.frames_merged > 0
        # Cancellation must not drop in-flight bytes: every payload byte
        # sent on the loopback mesh was received and accounted.
        sent = sum(s["payload_bytes_sent"] for s in report.per_superpeer.values())
        received = sum(
            s["payload_bytes_received"] for s in report.per_superpeer.values()
        )
        assert sent == received == report.payload_bytes

    def test_buffered_cancels_nothing(self, mesh_network):
        query = _query(mesh_network, which=1)
        report = run_socket_query(
            mesh_network, query, Variant.RTPM, mode="task", merge="buffered"
        ).report
        assert report.readers_cancelled == 0
        assert report.frames_merged == 0

    def test_idle_accounting_is_sane(self, mesh_network):
        query = _query(mesh_network)
        report = run_socket_query(
            mesh_network, query, Variant.FTPM, merge="pipelined"
        ).report
        assert 0.0 <= report.initiator_idle_seconds <= report.wall_seconds
        assert report.merge_stall_seconds >= 0.0

    def test_records_merge_observability(self, mesh_network):
        query = _query(mesh_network)
        with observed() as (tracer, metrics):
            report = run_socket_query(
                mesh_network, query, Variant.FTFM, merge="pipelined"
            ).report
        assert metrics.total("netexec.readers_cancelled") == report.readers_cancelled
        spans = [span for span in tracer.spans if span.name == "socket query"]
        assert dict(spans[0].args)["merge"] == "pipelined"


class TestProcessMode:
    def test_merge_info_round_trips(self, mesh_network, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRANSPORT_RUNDIR", str(tmp_path))
        query = _query(mesh_network)
        buffered = run_socket_query(
            mesh_network, query, Variant.FTPM, mode="process", merge="buffered"
        )
        pipelined = run_socket_query(
            mesh_network, query, Variant.FTPM, mode="process", merge="pipelined"
        )
        assert pipelined.result_ids == buffered.result_ids
        assert pipelined.report.frames_merged > 0
        assert pipelined.report.readers_cancelled > 0
        assert buffered.report.readers_cancelled == 0


class TestMergeModeResolution:
    def test_default_pipelined_only_for_block_index(self, monkeypatch):
        monkeypatch.delenv("REPRO_STREAM_MERGE", raising=False)
        assert resolve_merge_mode(None, "block") == "pipelined"
        assert resolve_merge_mode(None, "list") == "buffered"
        assert resolve_merge_mode(None, "rtree") == "buffered"

    def test_env_toggle(self, monkeypatch):
        monkeypatch.setenv("REPRO_STREAM_MERGE", "0")
        assert resolve_merge_mode(None, "block") == "buffered"
        monkeypatch.setenv("REPRO_STREAM_MERGE", "1")
        assert resolve_merge_mode(None, "block") == "pipelined"

    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_STREAM_MERGE", "0")
        assert resolve_merge_mode("pipelined", "block") == "pipelined"
        monkeypatch.delenv("REPRO_STREAM_MERGE", raising=False)
        assert resolve_merge_mode("buffered", "block") == "buffered"

    def test_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown merge mode"):
            resolve_merge_mode("psychic", "block")
