"""Tests for the super-peer query-result cache."""

import numpy as np
import pytest

from repro.core.dataset import PointSet
from repro.core.extended_skyline import subspace_skyline_points
from repro.data.workload import Query
from repro.p2p.churn import fail_peer, join_peer
from repro.p2p.network import SuperPeerNetwork
from repro.p2p.updates import insert_points
from repro.skypeer.cache import CachedQueryEngine
from repro.skypeer.executor import execute_query
from repro.skypeer.variants import Variant


@pytest.fixture
def network() -> SuperPeerNetwork:
    return SuperPeerNetwork.build(n_peers=30, points_per_peer=25, dimensionality=4, seed=9)


@pytest.fixture
def engine(network) -> CachedQueryEngine:
    return CachedQueryEngine(network)


def _truth(network, sub):
    return subspace_skyline_points(network.all_points(), sub).id_set()


class TestCachedCorrectness:
    @pytest.mark.parametrize("variant", list(Variant.skypeer_variants()))
    def test_matches_uncached(self, network, engine, variant):
        for sub in [(0, 2), (1, 2, 3)]:
            query = Query(subspace=sub, initiator=network.topology.superpeer_ids[0])
            assert engine.execute(query, variant).result_ids == _truth(network, sub)

    def test_repeat_queries_hit_cache(self, network, engine):
        query = Query(subspace=(0, 3), initiator=network.topology.superpeer_ids[0])
        engine.execute(query, Variant.FTPM)
        misses_after_first = engine.misses
        assert engine.hits == 0 or engine.hits > 0  # first run may reuse per-SP
        engine.execute(query, Variant.FTPM)
        assert engine.misses == misses_after_first  # no new misses
        assert engine.hits >= network.n_superpeers

    def test_different_initiators_share_cache(self, network, engine):
        sub = (1, 3)
        for initiator in network.topology.superpeer_ids:
            query = Query(subspace=sub, initiator=initiator)
            assert engine.execute(query).result_ids == _truth(network, sub)
        # one miss per super-peer for this subspace, no matter the initiator
        assert engine.misses == network.n_superpeers

    def test_refined_variants_still_exact(self, network, engine):
        """RT* thresholds derived from cached slices stay valid."""
        query = Query(subspace=(0, 1, 2), initiator=network.topology.superpeer_ids[1])
        assert engine.execute(query, Variant.RTPM).result_ids == _truth(network, (0, 1, 2))


class TestInvalidation:
    def test_insert_invalidates(self, network, engine, rng):
        sub = (0, 2)
        query = Query(subspace=sub, initiator=network.topology.superpeer_ids[0])
        engine.execute(query)
        peer_id = next(iter(network.peers))
        insert_points(
            network, peer_id,
            PointSet(np.zeros((1, 4)), np.array([77_000])),  # dominates everything
        )
        got = engine.execute(query)
        assert got.result_ids == _truth(network, sub)
        assert 77_000 in got.result_ids

    def test_churn_invalidates(self, network, engine, rng):
        sub = (1, 2)
        query = Query(subspace=sub, initiator=network.topology.superpeer_ids[0])
        engine.execute(query)
        join_peer(
            network, network.topology.superpeer_ids[0],
            PointSet(rng.random((15, 4)), np.arange(88_000, 88_015)),
        )
        assert engine.execute(query).result_ids == _truth(network, sub)
        victim = next(iter(network.peers))
        fail_peer(network, victim)
        assert engine.execute(query).result_ids == _truth(network, sub)

    def test_manual_invalidate(self, network, engine):
        query = Query(subspace=(0, 1), initiator=network.topology.superpeer_ids[0])
        engine.execute(query)
        assert engine.entries > 0
        engine.invalidate()
        assert engine.entries == 0


class TestCacheEconomics:
    def test_cached_volume_never_larger(self, network, engine):
        """Cached slices ship the true local skylines — never more than
        the scan-based lists."""
        query = Query(subspace=(0, 2, 3), initiator=network.topology.superpeer_ids[0])
        plain = execute_query(network, query, Variant.FTFM)
        engine.execute(query, Variant.FTFM)  # warm
        cached = engine.execute(query, Variant.FTFM)
        assert cached.result_ids == plain.result_ids
        assert cached.volume_bytes <= plain.volume_bytes
