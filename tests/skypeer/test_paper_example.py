"""End-to-end reproduction of the paper's Figure 2 worked example.

Three peers P_A, P_B, P_C attach to super-peer SP_A; each computes its
local extended skyline in the 4-dimensional original space; SP_A merges
them.  The paper's table gives P_A's ext-skyline as all five points
(A3 ext-only), and P_B's as {B1, B3, B4}; P_C's dataset is only
partially legible in the source, so a consistent stand-in with the same
ext-skyline structure ({C4, C5} surviving) is used.
"""

import numpy as np
import pytest

from repro.core.dataset import PointSet
from repro.core.extended_skyline import subspace_skyline_points
from repro.core.mapping import f_values
from repro.data.workload import Query
from repro.p2p.network import SuperPeerNetwork
from repro.p2p.node import Peer, SuperPeer
from repro.p2p.topology import Topology
from repro.skypeer.executor import execute_query
from repro.skypeer.variants import Variant


@pytest.fixture
def paper_peer_c() -> PointSet:
    """A P_C-like dataset: C4 = (1,1,3,4) and C5 = (6,6,6,4) survive;
    C1..C3 are ext-dominated by C4."""
    values = np.array(
        [
            [5, 4, 5, 6],  # C1 (first coordinate from the paper's table)
            [4, 5, 6, 5],  # C2
            [3, 3, 4, 5],  # C3
            [1, 1, 3, 4],  # C4
            [6, 6, 6, 4],  # C5
        ],
        dtype=float,
    )
    return PointSet(values, np.array([21, 22, 23, 24, 25]))


class TestFigure2PeerLevel:
    def test_peer_a_f_values(self, paper_peer_a):
        """The paper's table: f = 1 for A2..A5, f = 2 for A1."""
        by_id = dict(zip(paper_peer_a.ids, f_values(paper_peer_a.values)))
        assert by_id[1] == 2.0
        assert all(by_id[i] == 1.0 for i in (2, 3, 4, 5))

    def test_peer_a_ext_skyline(self, paper_peer_a):
        got = Peer(peer_id=0, data=paper_peer_a).compute_extended_skyline()
        assert got.points.id_set() == {1, 2, 3, 4, 5}

    def test_peer_a_regular_skyline_excludes_a3(self, paper_peer_a):
        """'four of the five points of P_A are skyline points, while A3
        is included as an ext-skyline point'."""
        sky = subspace_skyline_points(paper_peer_a, (0, 1, 2, 3)).id_set()
        assert sky == {1, 2, 4, 5}

    def test_peer_b_ext_skyline(self, paper_peer_b):
        """Table: B1, B4, B3 with f values 1, 1, 2; B2 and B5 pruned."""
        got = Peer(peer_id=1, data=paper_peer_b).compute_extended_skyline()
        assert got.points.id_set() == {11, 13, 14}
        f_by_id = dict(zip(got.result.points.ids, got.result.f))
        assert f_by_id[11] == 1.0 and f_by_id[14] == 1.0 and f_by_id[13] == 2.0

    def test_peer_c_ext_skyline(self, paper_peer_c):
        got = Peer(peer_id=2, data=paper_peer_c).compute_extended_skyline()
        assert got.points.id_set() == {24, 25}
        f_by_id = dict(zip(got.result.points.ids, got.result.f))
        assert f_by_id[24] == 1.0 and f_by_id[25] == 4.0


class TestFigure2SuperPeerLevel:
    def test_superpeer_merge(self, paper_peer_a, paper_peer_b, paper_peer_c):
        sp = SuperPeer(superpeer_id=0, dimensionality=4)
        for pid, data in ((0, paper_peer_a), (1, paper_peer_b), (2, paper_peer_c)):
            sp.receive_peer_skyline(
                pid, Peer(peer_id=pid, data=data).compute_extended_skyline().result
            )
        sp.rebuild_store()
        # The store is the ext-skyline of the union of the three datasets.
        union = PointSet.concat([paper_peer_a, paper_peer_b, paper_peer_c])
        from tests.conftest import brute_force_skyline_ids

        expected = brute_force_skyline_ids(union, (0, 1, 2, 3), strict=True)
        assert sp.store.points.id_set() == expected
        # C5 = (6,6,6,4): ext-dominated at the super-peer? A5 = (5,2,4,1)
        # is strictly smaller everywhere, so C5 falls out at SP level.
        assert 25 not in sp.store.points.id_set()

    def test_store_is_f_sorted(self, paper_peer_a, paper_peer_b):
        sp = SuperPeer(superpeer_id=0, dimensionality=4)
        for pid, data in ((0, paper_peer_a), (1, paper_peer_b)):
            sp.receive_peer_skyline(
                pid, Peer(peer_id=pid, data=data).compute_extended_skyline().result
            )
        sp.rebuild_store()
        assert np.all(np.diff(sp.store.f) >= 0)


class TestFigure2EndToEnd:
    def test_distributed_queries_over_figure2_network(
        self, paper_peer_a, paper_peer_b, paper_peer_c
    ):
        """Wire the three peers into an actual network and check every
        subspace query under every variant against the oracle."""
        topo = Topology.generate(n_peers=3, n_superpeers=1, seed=0)
        partitions = {0: paper_peer_a, 1: paper_peer_b, 2: paper_peer_c}
        net = SuperPeerNetwork.from_partitions(topo, partitions)
        union = PointSet.concat([paper_peer_a, paper_peer_b, paper_peer_c])
        from repro.core.subspace import all_subspaces

        for sub in all_subspaces(4):
            expected = subspace_skyline_points(union, sub).id_set()
            for variant in Variant:
                query = Query(subspace=sub, initiator=0)
                got = execute_query(net, query, variant)
                assert got.result_ids == expected, (sub, variant)
