"""Tests for distributed constrained subspace skylines."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.constrained import RangeConstraint, constrained_subspace_skyline
from repro.p2p.network import SuperPeerNetwork
from repro.skypeer.constrained import (
    ConstrainedQuery,
    execute_constrained_query,
)


def _oracle_ids(network, subspace, constraint):
    return constrained_subspace_skyline(
        network.all_points(), subspace, constraint
    ).id_set()


class TestStoreMode:
    """Upper-bound-only boxes: answerable from the ext-skyline stores."""

    def test_exact(self, small_network):
        constraint = RangeConstraint.from_dict({0: (0.0, 0.6), 2: (0.0, 0.8)})
        query = ConstrainedQuery(
            subspace=(0, 2, 3),
            initiator=small_network.topology.superpeer_ids[0],
            constraint=constraint,
        )
        got = execute_constrained_query(small_network, query)
        assert not got.used_full_data
        assert got.peer_uploads == 0
        assert got.result_ids == _oracle_ids(small_network, (0, 2, 3), constraint)

    def test_unconstrained_equals_plain_skyline(self, small_network):
        constraint = RangeConstraint.from_dict({})
        query = ConstrainedQuery(
            subspace=(1, 3),
            initiator=small_network.topology.superpeer_ids[1],
            constraint=constraint,
        )
        got = execute_constrained_query(small_network, query)
        assert got.result_ids == _oracle_ids(small_network, (1, 3), constraint)

    def test_box_excluding_everything(self, small_network):
        constraint = RangeConstraint.from_dict({0: (0.0, -1.0 + 1.0)})  # [0, 0]
        query = ConstrainedQuery(
            subspace=(0, 1),
            initiator=small_network.topology.superpeer_ids[0],
            constraint=constraint,
        )
        got = execute_constrained_query(small_network, query)
        assert got.result_ids == _oracle_ids(small_network, (0, 1), constraint)


class TestFullDataMode:
    """Boxes with lower bounds force the peer-level fallback."""

    def test_exact(self, small_network):
        constraint = RangeConstraint.from_dict({0: (0.4, 0.9)})
        query = ConstrainedQuery(
            subspace=(0, 1, 4),
            initiator=small_network.topology.superpeer_ids[0],
            constraint=constraint,
        )
        got = execute_constrained_query(small_network, query)
        assert got.used_full_data
        assert got.peer_uploads > 0
        assert got.result_ids == _oracle_ids(small_network, (0, 1, 4), constraint)

    def test_store_would_be_wrong(self, small_network):
        """The reason the fallback exists: answering a lower-bounded box
        from the ext-skyline stores misses points whose dominators fall
        below the bound.  Verify the discrepancy actually occurs."""
        constraint = RangeConstraint.from_dict({0: (0.5, 1.0)})
        subspace = (0, 1)
        truth = _oracle_ids(small_network, subspace, constraint)
        from repro.core.dataset import PointSet
        from repro.core.dominance import skyline_mask

        stores = PointSet.concat(
            [network_store.points for network_store in
             (small_network.store_of(sp) for sp in small_network.topology.superpeer_ids)]
        )
        inside = stores.mask(constraint.mask(stores.values))
        from_store = inside.mask(skyline_mask(inside.values, subspace)).id_set()
        assert from_store != truth  # stores alone are insufficient
        got = execute_constrained_query(
            small_network,
            ConstrainedQuery(subspace=subspace,
                             initiator=small_network.topology.superpeer_ids[0],
                             constraint=constraint),
        )
        assert got.result_ids == truth

    def test_costs_reported(self, small_network):
        constraint = RangeConstraint.from_dict({1: (0.3, 1.0)})
        query = ConstrainedQuery(
            subspace=(1, 2),
            initiator=small_network.topology.superpeer_ids[0],
            constraint=constraint,
        )
        got = execute_constrained_query(small_network, query)
        assert got.volume_bytes > 0
        assert got.message_count > 0
        assert got.total_time >= got.computational_time


class TestValidation:
    def test_unknown_initiator(self, small_network):
        query = ConstrainedQuery(
            subspace=(0, 1), initiator=10**9,
            constraint=RangeConstraint.from_dict({}),
        )
        with pytest.raises(KeyError):
            execute_constrained_query(small_network, query)


@st.composite
def constrained_cases(draw):
    seed = draw(st.integers(0, 2**31 - 1))
    d = draw(st.integers(2, 4))
    dim = draw(st.integers(0, d - 1))
    low = draw(st.floats(0, 0.7, allow_nan=False))
    high = draw(st.floats(0.3, 1.0, allow_nan=False))
    if low > high:
        low, high = high, low
    k = draw(st.integers(1, d))
    dims = tuple(sorted(draw(
        st.lists(st.integers(0, d - 1), min_size=k, max_size=k, unique=True)
    )))
    return seed, d, dim, low, high, dims


@given(constrained_cases())
@settings(max_examples=25, deadline=None)
def test_constrained_queries_always_exact(case):
    seed, d, dim, low, high, dims = case
    network = SuperPeerNetwork.build(
        n_peers=12, points_per_peer=15, dimensionality=d,
        n_superpeers=3, seed=seed,
    )
    constraint = RangeConstraint.from_dict({dim: (low, high)})
    query = ConstrainedQuery(
        subspace=dims,
        initiator=network.topology.superpeer_ids[seed % 3],
        constraint=constraint,
    )
    got = execute_constrained_query(network, query)
    assert got.result_ids == _oracle_ids(network, dims, constraint)
