"""Hypothesis invariants for the executor's two-clock timing model.

Three families of guarantees:

* algebraic — ``Clock`` operations keep ``comp <= total`` and never
  move any component backwards (given non-negative durations);
* schedule — in a traced execution every recorded hop/span is
  non-decreasing on both clocks and the per-track schedule is properly
  nested or disjoint;
* determinism — ``Clock.work`` (and the comparison counters feeding it)
  is identical across repeated runs of the same seeded query, so
  figures built on it cannot flake on scheduler noise.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.workload import Query
from repro.obs import observed
from repro.p2p.network import SuperPeerNetwork
from repro.skypeer.executor import Clock, execute_query
from repro.skypeer.variants import Variant

finite = st.floats(
    min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
)


@st.composite
def clocks(draw):
    comp = draw(finite)
    extra = draw(finite)
    work = draw(finite)
    return Clock(comp=comp, total=comp + extra, work=work)


@given(clocks(), finite, finite)
def test_after_compute_advances_both_clocks(clock, seconds, work):
    advanced = clock.after_compute(seconds, work=work)
    assert advanced.comp >= clock.comp
    assert advanced.total >= clock.total
    assert advanced.work >= clock.work
    assert advanced.comp <= advanced.total


@given(clocks(), finite)
def test_after_transfer_only_advances_total(clock, seconds):
    advanced = clock.after_transfer(seconds)
    assert advanced.comp == clock.comp
    assert advanced.work == clock.work
    assert advanced.total >= clock.total
    assert advanced.comp <= advanced.total


@given(st.lists(clocks(), min_size=1, max_size=6))
def test_latest_is_elementwise_max(branch_clocks):
    joined = Clock.latest(branch_clocks)
    assert joined.comp == max(c.comp for c in branch_clocks)
    assert joined.total == max(c.total for c in branch_clocks)
    assert joined.work == max(c.work for c in branch_clocks)
    assert joined.comp <= joined.total
    # Joining is idempotent and order-insensitive.
    assert Clock.latest([joined]) == joined
    assert Clock.latest(list(reversed(branch_clocks))) == joined


@st.composite
def seeded_queries(draw):
    seed = draw(st.integers(0, 2**16))
    d = draw(st.integers(2, 4))
    n_peers = draw(st.integers(4, 12))
    k = draw(st.integers(1, d))
    dims = draw(st.lists(st.integers(0, d - 1), min_size=k, max_size=k, unique=True))
    variant = draw(st.sampled_from(list(Variant)))
    return seed, d, n_peers, tuple(sorted(dims)), variant


def _build(seed: int, d: int, n_peers: int) -> SuperPeerNetwork:
    return SuperPeerNetwork.build(
        n_peers=n_peers, points_per_peer=8, dimensionality=d, seed=seed
    )


@given(seeded_queries())
@settings(max_examples=20, deadline=None)
def test_every_reported_hop_is_non_decreasing(case):
    seed, d, n_peers, subspace, variant = case
    network = _build(seed, d, n_peers)
    query = Query(subspace=subspace, initiator=network.topology.superpeer_ids[0])
    with observed() as (tracer, _):
        execution = execute_query(network, query, variant)
    assert 0.0 <= execution.computational_time <= execution.total_time + 1e-12
    assert execution.critical_path_examined >= 0
    for span in tracer.spans:
        comp = span.interval("comp")
        total = span.interval("total")
        if comp is None or total is None:
            continue
        assert comp[1] >= comp[0], span
        assert total[1] >= total[0], span
        # A point in model time never has comp ahead of total.
        assert comp[0] <= total[0] + 1e-12, span
        assert comp[1] <= total[1] + 1e-12, span
    assert tracer.validate() == []


@given(seeded_queries())
@settings(max_examples=12, deadline=None)
def test_work_is_deterministic_across_repeated_runs(case):
    seed, d, n_peers, subspace, variant = case
    network = _build(seed, d, n_peers)
    query = Query(subspace=subspace, initiator=network.topology.superpeer_ids[0])
    first = execute_query(network, query, variant)
    second = execute_query(network, query, variant)
    rebuilt = execute_query(_build(seed, d, n_peers), query, variant)
    for other in (second, rebuilt):
        assert other.critical_path_examined == first.critical_path_examined
        assert other.comparisons == first.comparisons
        assert other.volume_bytes == first.volume_bytes
        assert other.message_count == first.message_count
        assert other.result_ids == first.result_ids
        assert np.array_equal(other.result.points.values, first.result.points.values)
